// Package platform assembles the full simulated machine of Table 1 —
// out-of-order-class cores with private TLBs and caches, the sliced LLC
// with Contiguitas-HW, DRAM, and the IOMMU/NIC — and implements the OS
// flows the paper evaluates against it: software page migration with
// IPI-based TLB shootdowns (Figure 1), and Contiguitas-HW migration with
// lazy local invalidations (§3.3). The Figure 13 microbenchmark and the
// §5.3 request-serving experiments run on top of this package.
package platform

import (
	"fmt"

	"contiguitas/internal/hw"
	"contiguitas/internal/hw/cache"
	"contiguitas/internal/hw/contighw"
	"contiguitas/internal/hw/dram"
	"contiguitas/internal/hw/engine"
	"contiguitas/internal/hw/iommu"
	"contiguitas/internal/hw/tlb"
	"contiguitas/internal/telemetry"
)

// Machine is one simulated server.
type Machine struct {
	P      hw.Params
	Eng    *engine.Engine
	DRAM   *dram.DRAM
	H      *cache.Hierarchy
	TLBs   []*tlb.PerCore
	Contig *contighw.Engine // nil on the baseline machine
	IOMMU  *iommu.IOMMU
	NIC    *iommu.Device

	pageTable map[uint64]uint64 // VPN -> PPN (4 KB mappings)
	hugeTable map[uint64]uint64 // VPN>>9 -> PPN>>9 (2 MB mappings)
	mode      contighw.Mode     // valid when Contig != nil

	// Invlpgs counts local TLB invalidations performed.
	Invlpgs uint64

	// TP, when attached, receives cycle-stamped migration tracepoints
	// (EvMigrateStart/EvTLBShootdown/EvMoverBegin/EvMoverEnd/
	// EvShootdownFree) timestamped with the engine clock. Set its Unit
	// to "cycle" (AttachTracer does) so exporters convert correctly.
	TP *telemetry.Ring
}

// AttachTracer creates a cycle-unit tracepoint ring of the given
// capacity and attaches it to the machine.
func (m *Machine) AttachTracer(capacity int) *telemetry.Ring {
	m.TP = telemetry.NewRing(capacity)
	m.TP.Unit = "cycle"
	return m.TP
}

// NewMachine builds a machine; contigMode nil gives the Linux baseline
// (no Contiguitas-HW attached).
func NewMachine(p hw.Params, contigMode *contighw.Mode) *Machine {
	eng := engine.New()
	d := dram.New(dram.DefaultConfig())
	h := cache.New(p, d)
	m := &Machine{
		P:         p,
		Eng:       eng,
		DRAM:      d,
		H:         h,
		IOMMU:     iommu.New(p),
		pageTable: make(map[uint64]uint64),
		hugeTable: make(map[uint64]uint64),
	}
	m.NIC = iommu.NewDevice(m.IOMMU)
	for i := 0; i < p.Cores; i++ {
		m.TLBs = append(m.TLBs, tlb.NewPerCore(p))
	}
	if contigMode != nil {
		m.mode = *contigMode
		m.Contig = contighw.New(contighw.DefaultConfig(*contigMode), h, eng)
	}
	return m
}

// Mode returns the attached Contiguitas-HW design point; only meaningful
// when Contig is non-nil.
func (m *Machine) Mode() contighw.Mode { return m.mode }

// MapPage installs a 4 KB VPN→PPN translation.
func (m *Machine) MapPage(vpn, ppn uint64) { m.pageTable[vpn] = ppn }

// MapHugePage installs a 2 MB translation: the 512-page virtual region
// starting at vpn2m<<9 maps to the physical region at ppn2m<<9. TLBs
// cache it as a single entry — the huge-page reach advantage.
func (m *Machine) MapHugePage(vpn2m, ppn2m uint64) { m.hugeTable[vpn2m] = ppn2m }

// PageTableLookup resolves a VPN to a base-page PPN; unmapped VPNs
// identity-map, which keeps microbenchmarks terse.
func (m *Machine) PageTableLookup(vpn uint64) uint64 {
	ppn, _ := m.Resolve(vpn)
	return ppn
}

// Resolve is the page-table walk: huge mappings take priority (a real
// page table has one entry or the other at the PMD level).
func (m *Machine) Resolve(vpn uint64) (uint64, bool) {
	if hppn, ok := m.hugeTable[vpn>>9]; ok {
		return hppn<<9 | vpn&0x1ff, true
	}
	if ppn, ok := m.pageTable[vpn]; ok {
		return ppn, false
	}
	return vpn, false
}

// Access performs one memory access by a core at virtual address va,
// starting at cycle now: TLB translation (with page walk on miss), then
// the cache hierarchy. Returns the value observed and completion cycle.
func (m *Machine) Access(core int, va uint64, isWrite bool, val uint64, now uint64) (uint64, uint64) {
	vpn := va >> hw.PageShift
	ppn, tlat := m.TLBs[core].Translate(vpn, m.Resolve)
	pa := ppn<<hw.PageShift | va&(hw.PageBytes-1)
	v, done := m.H.Access(core, pa, isWrite, val, now+tlat)
	return v, done
}

// DeviceAccess performs one NIC DMA access (cache-coherent, served at
// the LLC level like real DDIO traffic).
func (m *Machine) DeviceAccess(va uint64, isWrite bool, val uint64, now uint64) (uint64, uint64) {
	vpn := va >> hw.PageShift
	ppn, tlat := m.NIC.Translate(vpn, m.PageTableLookup)
	pa := ppn<<hw.PageShift | va&(hw.PageBytes-1)
	// Device traffic bypasses core private caches; reuse core 0's port
	// for slice routing purposes via the noncacheable-style LLC path.
	line := hw.LineAddr(pa)
	v, done := m.llcDirect(line, isWrite, val, now+tlat)
	return v, done
}

// llcDirect is the device's LLC-coherent access: collect private copies
// (DDIO-style snoop), then read or write the LLC.
func (m *Machine) llcDirect(line uint64, isWrite bool, val uint64, now uint64) (uint64, uint64) {
	canonical := line
	var extra uint64
	if m.Contig != nil {
		canonical, extra = m.Contig.Translate(line)
	}
	v, wasM, c := m.H.CollectAndInvalidate(canonical)
	cycles := extra + c
	if isWrite {
		cycles += m.H.WriteLLC(canonical, val)
		v = val
	} else if wasM {
		cycles += m.H.WriteLLC(canonical, v)
	}
	return v, now + cycles
}

// MigrationReport describes one measured page migration.
type MigrationReport struct {
	UnavailableCycles uint64 // window during which the page is blocked
	TotalCycles       uint64 // end-to-end completion
}

// SoftwareMigrate runs the Figure 1 procedure: clear PTE, invalidate the
// initiator's TLB, IPI every victim, wait for acknowledgements, copy the
// page, update the PTE. The page is unavailable for the whole sequence.
// IPI delivery and acknowledgement handling serialise on the interrupt
// fabric — the poor scaling the paper measures.
func (m *Machine) SoftwareMigrate(initiator int, vpn, srcPPN, dstPPN uint64, victims []int) MigrationReport {
	p := m.P
	now := m.Eng.Now()
	t := now
	if m.TP.Enabled() {
		m.TP.Emit(now, telemetry.EvMigrateStart, srcPPN, 0, 0)
	}

	// Step 1: clear PTE. The page becomes unavailable here.
	t += 150
	delete(m.pageTable, vpn)

	// Step 2: initiator's local invalidation.
	t += m.TLBs[initiator].Invlpg(vpn)
	m.Invlpgs++

	// Step 3-5: serialized IPI rounds. The interrupt fabric delivers
	// and collects acknowledgements one victim at a time.
	for _, v := range victims {
		t += p.IPISendCycles
		t += p.IPIDeliveryCycles
		t += m.TLBs[v].Invlpg(vpn) // Step 4 on the victim
		m.Invlpgs++
		t += p.AckCycles // Step 5
	}

	// Device TLBs go through the IOMMU invalidation queue.
	m.IOMMU.QueueInvalidation(vpn)
	t += m.IOMMU.ProcessQueue([]*iommu.Device{m.NIC})

	// Step 6: copy the page through the memory system.
	t += m.copyPage(srcPPN, dstPPN, t)

	// Step 7: update the PTE; the page becomes available again.
	t += 150
	m.MapPage(vpn, dstPPN)

	m.Eng.At(t, func() {})
	m.Eng.Run()
	if m.TP.Enabled() {
		m.TP.Emit(now, telemetry.EvTLBShootdown, srcPPN, uint64(len(victims)), t-now)
		m.TP.Emit(now, telemetry.EvMigrateComplete, srcPPN, dstPPN, t-now)
	}
	return MigrationReport{UnavailableCycles: t - now, TotalCycles: t - now}
}

// copyPage models the kernel's 4 KB copy: line reads and writes that
// mostly hit the LLC/DRAM pipeline; ~1300 cycles as measured (§5.3).
func (m *Machine) copyPage(srcPPN, dstPPN uint64, start uint64) uint64 {
	var lat uint64 = 100 // warmup / setup
	for i := 0; i < hw.LinesPerPage; i++ {
		// Pipelined line copies: issue every ~18 cycles.
		lat += 18
	}
	_ = srcPPN
	_ = dstPPN
	return lat + 50
}

// HWMigrateOptions controls a Contiguitas-HW migration run.
type HWMigrateOptions struct {
	// KernelEntryInterval is the per-core gap between natural kernel
	// entries (context switches / syscalls) at which lazy local
	// invalidations happen; §5.3 observes 40K-100K per second, i.e.
	// one every ~25 µs (50K cycles at 2 GHz).
	KernelEntryInterval uint64
}

// StartHWMigration schedules the §3.3 flow on a machine with
// Contiguitas-HW attached and returns immediately; onCleared fires when
// the metadata entry has been cleared. The page remains available for
// the whole duration, so migrations overlap freely with application
// traffic (the §5.3 experiments rely on this).
func (m *Machine) StartHWMigration(vpn, srcPPN, dstPPN uint64, opts HWMigrateOptions, onCleared func()) error {
	if m.Contig == nil {
		return fmt.Errorf("platform: no Contiguitas-HW attached")
	}
	if opts.KernelEntryInterval == 0 {
		opts.KernelEntryInterval = 50000
	}
	noncacheable := m.mode == contighw.Noncacheable

	finish := func() {
		// OS observed the completion flag: update the PTE, then each
		// core performs a local invalidation at its next natural
		// kernel entry — no IPIs, no synchronous acknowledgements.
		m.MapPage(vpn, dstPPN)
		last := uint64(0)
		for c := 0; c < m.P.Cores; c++ {
			core := c
			delay := (opts.KernelEntryInterval / uint64(m.P.Cores)) * uint64(core+1)
			if delay > last {
				last = delay
			}
			m.Eng.After(delay, func() {
				m.TLBs[core].Invlpg(vpn)
				m.Invlpgs++
			})
		}
		m.IOMMU.QueueInvalidation(vpn)
		m.IOMMU.ProcessQueue([]*iommu.Device{m.NIC})
		m.Eng.After(last+10, func() {
			if _, err := m.Contig.Submit(contighw.Descriptor{Op: contighw.OpClear, Src: srcPPN}); err != nil {
				panic(err)
			}
			if onCleared != nil {
				onCleared()
			}
		})
	}

	if noncacheable {
		// Migration mapping installed and copy started at once; the OS
		// learns of completion via the work descriptor's completion
		// address.
		_, err := m.Contig.Submit(contighw.Descriptor{
			Op: contighw.OpMigrate, Src: srcPPN, Dst: dstPPN,
			StartCopy: true, OnComplete: finish,
		})
		if err != nil {
			return err
		}
	} else {
		// Cacheable flow: install redirection only, flip the PTE and
		// invalidate TLBs lazily, then start the copy.
		_, err := m.Contig.Submit(contighw.Descriptor{
			Op: contighw.OpMigrate, Src: srcPPN, Dst: dstPPN,
		})
		if err != nil {
			return err
		}
		m.MapPage(vpn, dstPPN)
		last := uint64(0)
		for c := 0; c < m.P.Cores; c++ {
			core := c
			delay := (opts.KernelEntryInterval / uint64(m.P.Cores)) * uint64(core+1)
			if delay > last {
				last = delay
			}
			m.Eng.After(delay, func() {
				m.TLBs[core].Invlpg(vpn)
				m.Invlpgs++
			})
		}
		m.Eng.After(last+10, func() {
			_, err := m.Contig.Submit(contighw.Descriptor{
				Op: contighw.OpStartCopy, Src: srcPPN,
			})
			if err != nil {
				panic(err)
			}
			// Poll for completion at kernel entries.
			var poll func()
			poll = func() {
				if ent := m.Contig.Lookup(srcPPN); ent != nil && ent.Completion {
					if _, err := m.Contig.Submit(contighw.Descriptor{Op: contighw.OpClear, Src: srcPPN}); err != nil {
						panic(err)
					}
					if onCleared != nil {
						onCleared()
					}
					return
				}
				m.Eng.After(2000, poll)
			}
			m.Eng.After(2000, poll)
		})
	}
	return nil
}

// HWMigrate runs StartHWMigration to completion and reports: the
// unavailable window is the cost of one local invalidation (what
// Figure 13 plots for Contiguitas), the total is end-to-end time until
// the metadata entry was cleared.
func (m *Machine) HWMigrate(vpn, srcPPN, dstPPN uint64, opts HWMigrateOptions) (MigrationReport, error) {
	return m.HWMigrateObserved(vpn, srcPPN, dstPPN, opts, nil)
}

// HWMigrateObserved is HWMigrate with an extra hook: onCopyDone fires
// when the copy engine has processed every line (the metadata entry's
// completion flag), before the lazy invalidation window and Clear.
func (m *Machine) HWMigrateObserved(vpn, srcPPN, dstPPN uint64, opts HWMigrateOptions, onCopyDone func()) (MigrationReport, error) {
	start := m.Eng.Now()
	if m.TP.Enabled() {
		m.TP.Emit(start, telemetry.EvMigrateStart, srcPPN, 0, 1)
		m.TP.Emit(start, telemetry.EvMoverBegin, srcPPN, dstPPN, 0)
	}
	var clearAt uint64
	complete := false
	err := m.StartHWMigration(vpn, srcPPN, dstPPN, opts, func() {
		clearAt = m.Eng.Now()
		complete = true
	})
	if err != nil {
		return MigrationReport{}, err
	}
	if onCopyDone != nil {
		var poll func()
		poll = func() {
			if ent := m.Contig.Lookup(srcPPN); ent != nil && ent.Completion {
				onCopyDone()
				return
			}
			if m.Contig.Lookup(srcPPN) == nil { // already cleared
				onCopyDone()
				return
			}
			m.Eng.After(50, poll)
		}
		m.Eng.After(50, poll)
	}
	m.Eng.Run()
	if !complete {
		if m.TP.Enabled() {
			m.TP.Emit(m.Eng.Now(), telemetry.EvMoverEnd, srcPPN, m.Eng.Now()-start, 0)
		}
		return MigrationReport{}, fmt.Errorf("platform: migration did not complete")
	}
	if m.TP.Enabled() {
		m.TP.Emit(start, telemetry.EvMoverEnd, srcPPN, clearAt-start, 1)
		m.TP.Emit(start, telemetry.EvShootdownFree, srcPPN, uint64(m.P.Cores-1), clearAt-start)
	}
	return MigrationReport{
		UnavailableCycles: m.P.INVLPGCycles, // one local invalidation
		TotalCycles:       clearAt - start,
	}, nil
}
