package cpu

import (
	"testing"

	"contiguitas/internal/trans"
)

func fastCfg() Config {
	cfg := DefaultConfig()
	cfg.Accesses = 60_000
	cfg.FootprintPages = 16384 // 64 MB
	return cfg
}

func TestTranslationStudyBasics(t *testing.T) {
	r := TranslationStudy(fastCfg())
	if r.Accesses == 0 || r.Cycles <= 0 {
		t.Fatal("empty run")
	}
	if r.Walks == 0 {
		t.Fatal("a 64MB zipf stream must miss the TLB")
	}
	if r.WalkFrac <= 0 || r.WalkFrac >= 0.6 {
		t.Fatalf("walk fraction = %v, want plausible", r.WalkFrac)
	}
}

func TestHugePagesCutWalkCycles(t *testing.T) {
	f4, f2 := CompareHugePages(fastCfg())
	if f2 >= f4 {
		t.Fatalf("2MB pages must reduce walk cycles: 4K=%.4f 2M=%.4f", f4, f2)
	}
	// With a 64MB footprint, 2MB mappings (32 regions) fit entirely in
	// the TLBs: walks should all but vanish.
	if f2 > f4/4 {
		t.Fatalf("2MB reduction too weak: 4K=%.4f 2M=%.4f", f4, f2)
	}
}

// TestValidatesTransModelDirection cross-checks the analytic model: for
// a footprint the simulated 4K→2M reduction and the trans model's
// residual factor must agree in direction and rough magnitude.
func TestValidatesTransModelDirection(t *testing.T) {
	cfg := fastCfg()
	f4, f2 := CompareHugePages(cfg)
	simResidual := f2 / f4

	tlb := trans.DefaultTLB()
	modelResidual := tlb.Residual(trans.Page2M, uint64(cfg.FootprintPages)*4096)

	// The 64MB footprint is fully covered by the 2MB TLB reach in both
	// the simulation and the model: both residuals must be small.
	if modelResidual > 0.25 || simResidual > 0.25 {
		t.Fatalf("residuals disagree with full-coverage expectation: sim=%.3f model=%.3f",
			simResidual, modelResidual)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := TranslationStudy(fastCfg())
	b := TranslationStudy(fastCfg())
	if a.Cycles != b.Cycles || a.Walks != b.Walks {
		t.Fatal("same seed must reproduce exactly")
	}
	cfg := fastCfg()
	cfg.Seed = 2
	c := TranslationStudy(cfg)
	if c.Cycles == a.Cycles {
		t.Fatal("different seed should differ")
	}
}
