// Package cpu models the memory side of an out-of-order core well
// enough to measure address-translation overhead: demand misses overlap
// up to a memory-level-parallelism window (bounded by the ROB), while
// page walks serialise — a TLB miss blocks address generation, which is
// why walk cycles show up so prominently in the paper's Figure 3
// profiles. The TranslationStudy experiment runs the same access stream
// over 4 KB and 2 MB mappings on the full platform (TLBs, caches, DRAM)
// and reports the fraction of cycles lost to walks, validating the
// analytic model in internal/trans against the hardware simulation.
package cpu

import (
	"contiguitas/internal/hw"
	"contiguitas/internal/hw/platform"
	"contiguitas/internal/stats"
)

// Config parameterises one core-timing run.
type Config struct {
	// MLP is the number of overlapping demand misses the core sustains
	// (ROB-limited; ~8-10 on modern cores).
	MLP int
	// WorkCyclesPerAccess is the compute between memory operations.
	WorkCyclesPerAccess float64
	// Accesses is the stream length.
	Accesses int
	// FootprintPages sizes the dataset (4 KB pages).
	FootprintPages int
	// ZipfS is the access-popularity skew.
	ZipfS float64
	// WriteFrac is the store fraction.
	WriteFrac float64
	// RunLength is the number of accesses per page visit (spatial
	// locality: real code touches a page many times once it is hot).
	RunLength int
	// Huge backs the footprint with 2 MB mappings instead of 4 KB.
	Huge bool
	Seed uint64
}

// DefaultConfig returns a cache-resident-but-TLB-hostile stream.
func DefaultConfig() Config {
	return Config{
		MLP:                 8,
		WorkCyclesPerAccess: 6,
		Accesses:            200_000,
		FootprintPages:      32768, // 128 MB
		ZipfS:               0.8,
		WriteFrac:           0.25,
		RunLength:           8,
		Seed:                1,
	}
}

// Result reports the run.
type Result struct {
	Cycles     float64
	Accesses   uint64
	Walks      uint64
	WalkCycles float64
	// WalkFrac is the fraction of cycles spent in page walks — the
	// quantity Figure 3 plots per service.
	WalkFrac float64
}

// TranslationStudy executes the stream on core 0 of a fresh machine.
func TranslationStudy(cfg Config) Result {
	p := hw.DefaultParams()
	m := platform.NewMachine(p, nil)
	rng := stats.NewRNG(cfg.Seed)
	zipf := stats.NewZipf(rng, cfg.FootprintPages, cfg.ZipfS)

	// Back the footprint: identity 4 KB mappings, or 2 MB regions.
	if cfg.Huge {
		regions := (cfg.FootprintPages + 511) / 512
		for r := 0; r < regions; r++ {
			m.MapHugePage(uint64(r), uint64(r))
		}
	} else {
		for i := 0; i < cfg.FootprintPages; i++ {
			m.MapPage(uint64(i), uint64(i))
		}
	}

	tlbs := m.TLBs[0]
	var res Result
	var cycles float64
	now := uint64(0)
	run := cfg.RunLength
	if run <= 0 {
		run = 1
	}
	for i := 0; i < cfg.Accesses; {
		vpn := uint64(zipf.Next())
		for j := 0; j < run && i < cfg.Accesses; j++ {
			off := uint64(rng.Intn(hw.LinesPerPage)) * hw.LineBytes

			walksBefore := tlbs.Walks + tlbs.HugeWalks
			_, tlat := tlbs.Translate(vpn, m.Resolve)
			walked := tlbs.Walks+tlbs.HugeWalks > walksBefore

			pa := m.PageTableLookup(vpn)<<hw.PageShift | off
			_, done := m.H.Access(0, pa, rng.Bool(cfg.WriteFrac), uint64(i), now)
			mlat := float64(done - now)
			now = done

			// Timing: TLB hits hide under the pipeline; walks
			// serialise. Memory latency amortises across the MLP
			// window.
			if walked {
				res.Walks++
				walkPart := float64(tlat - p.L1TLBLatency)
				res.WalkCycles += walkPart
				cycles += walkPart
			}
			cycles += mlat/float64(cfg.MLP) + cfg.WorkCyclesPerAccess
			res.Accesses++
			i++
		}
	}
	res.Cycles = cycles
	if cycles > 0 {
		res.WalkFrac = res.WalkCycles / cycles
	}
	return res
}

// CompareHugePages runs the study at both page sizes and returns the
// 4 KB and 2 MB walk fractions — the simulated counterpart of a
// Figure 3 bar pair.
func CompareHugePages(cfg Config) (frac4K, frac2M float64) {
	cfg.Huge = false
	r4 := TranslationStudy(cfg)
	cfg.Huge = true
	r2 := TranslationStudy(cfg)
	return r4.WalkFrac, r2.WalkFrac
}
