// Package contighw implements the Contiguitas hardware extensions of
// §3.3: a metadata table in the last-level cache holding migration
// mappings (source PPN, destination PPN, copy progress), a copy engine
// that walks a page line by line with BusRdX semantics and chained
// slice handoff, traffic redirection that serves every request from the
// correct location while the page remains in use, and the DSA-style
// work queue (Migrate / Clear descriptors with a completion address)
// through which the OS drives it.
//
// Both design points are implemented:
//
//   - Noncacheable: lines of a page under migration bypass the private
//     caches and are served by the LLC, which redirects by progress.
//   - Cacheable: private caching stays enabled under the invariant that
//     only one mapping of a line is cached at a time; the engine
//     invalidates opposite-mapping copies on LLC access, and the copy
//     skips lines already modified under the destination mapping.
package contighw

import (
	"errors"
	"fmt"

	"contiguitas/internal/hw"
	"contiguitas/internal/hw/cache"
	"contiguitas/internal/hw/engine"
)

// Mode selects the design point.
type Mode uint8

const (
	// Noncacheable serves pages under migration from the LLC only.
	Noncacheable Mode = iota
	// Cacheable keeps private caching enabled with the single-mapping
	// invariant.
	Cacheable
)

// String names the mode.
func (m Mode) String() string {
	if m == Noncacheable {
		return "noncacheable"
	}
	return "cacheable"
}

// phase tracks a cacheable-mode migration's lifecycle.
type phase uint8

const (
	phaseRedirect phase = iota // mappings active, copy not started
	phaseCopy                  // TLB transition done, copy running
	phaseDone
)

// Entry is one metadata-table row (Figure 8b): the migration mapping and
// its progress. The copied bitmap realises the paper's per-slice Ptr —
// each slice is responsible only for the lines that hash to it, so
// global progress is the union of per-slice progress. Entries may span
// multiple contiguous pages (§3.3 "Variable Buffer Sizes": the table's
// Size field lets one mapping cover a whole device buffer).
type Entry struct {
	Src, Dst uint64   // first PPNs of the ranges
	Pages    int      // range length in pages (>= 1)
	copied   []uint64 // one bitmap word per page; bit i = line copied
	ph       phase
	active   bool

	// Completion is set when every line has been processed; the OS
	// polls it at its natural kernel entries (context switches).
	Completion bool
	// OnComplete, if non-nil, runs when the copy finishes.
	OnComplete func()
}

// Ptr returns the number of lines copied (the paper's Ptr counter).
func (e *Entry) Ptr() int {
	n := 0
	for _, w := range e.copied {
		for b := w; b != 0; b &= b - 1 {
			n++
		}
	}
	return n
}

// lineCopied reports whether line off of page pageIdx has been copied.
func (e *Entry) lineCopied(pageIdx, off int) bool {
	return e.copied[pageIdx]&(1<<uint(off)) != 0
}

// pageIndexOf returns which page of the range a PPN addresses, and
// whether the PPN is the source or destination side.
func (e *Entry) pageIndexOf(ppn uint64) (idx int, isSrc, ok bool) {
	if ppn >= e.Src && ppn < e.Src+uint64(e.Pages) {
		return int(ppn - e.Src), true, true
	}
	if ppn >= e.Dst && ppn < e.Dst+uint64(e.Pages) {
		return int(ppn - e.Dst), false, true
	}
	return 0, false, false
}

// Config parameterises the engine.
type Config struct {
	Mode Mode
	// EntriesPerSlice is the metadata-table capacity (Table 1: 16, FA).
	EntriesPerSlice int
	// IssueIntervalCycles is the pipelined per-line issue rate of the
	// copy engine.
	IssueIntervalCycles uint64
	// ParallelSlices, when true, lets slices copy their lines
	// concurrently instead of the paper's chained handoff (an ablation;
	// the paper chooses the chained design to limit interconnect
	// pressure).
	ParallelSlices bool
	// EnqCmdCycles is the ENQCMD submission cost.
	EnqCmdCycles uint64
}

// DefaultConfig matches the paper's design choices.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:                mode,
		EntriesPerSlice:     16,
		IssueIntervalCycles: 60,
		EnqCmdCycles:        50,
	}
}

// Engine is the Contiguitas-HW instance attached to a cache hierarchy.
type Engine struct {
	cfg Config
	h   *cache.Hierarchy
	eng *engine.Engine

	entries []*Entry
	bySrc   map[uint64]*Entry
	byDst   map[uint64]*Entry

	// Stats.
	Migrations            uint64
	LinesCopied           uint64
	LinesSkippedModified  uint64
	Redirects             uint64
	OppositeInvalidations uint64
	CopyBusyCycles        uint64
}

// New attaches an engine to the hierarchy and registers it as the
// redirector.
func New(cfg Config, h *cache.Hierarchy, eng *engine.Engine) *Engine {
	e := &Engine{
		cfg:   cfg,
		h:     h,
		eng:   eng,
		bySrc: make(map[uint64]*Entry),
		byDst: make(map[uint64]*Entry),
	}
	h.SetRedirector(e)
	return e
}

// Errors returned by the work queue.
var (
	ErrTableFull = errors.New("contighw: metadata table full")
	ErrNoEntry   = errors.New("contighw: no metadata entry for PPN")
	ErrBusy      = errors.New("contighw: PPN already under migration")
)

// Op is a work-descriptor opcode.
type Op uint8

const (
	// OpMigrate installs a migration mapping; with StartCopy set the
	// copy begins immediately (the noncacheable flow), otherwise the
	// mapping only redirects until OpStartCopy (the cacheable flow).
	OpMigrate Op = iota
	// OpStartCopy begins the copy of an installed mapping (cacheable
	// flow, after the OS finished the TLB transition).
	OpStartCopy
	// OpClear removes the metadata entry, ending the migration.
	OpClear
)

// Descriptor is the DSA-style work descriptor the OS submits via
// ENQCMD: command, parameters, and a completion callback standing in
// for the completion address the hardware writes (§3.3 Interface).
// SizePages extends the mapping over a contiguous multi-page buffer
// (§3.3 "Variable Buffer Sizes"); zero means one page.
type Descriptor struct {
	Op         Op
	Src, Dst   uint64
	SizePages  int
	StartCopy  bool
	OnComplete func()
}

// Submit enqueues a descriptor, returning the submission latency.
func (e *Engine) Submit(d Descriptor) (uint64, error) {
	switch d.Op {
	case OpMigrate:
		return e.cfg.EnqCmdCycles, e.migrate(d)
	case OpStartCopy:
		ent := e.bySrc[d.Src]
		if ent == nil {
			return e.cfg.EnqCmdCycles, ErrNoEntry
		}
		if ent.ph == phaseRedirect {
			ent.ph = phaseCopy
			e.startCopy(ent)
		}
		return e.cfg.EnqCmdCycles, nil
	case OpClear:
		ent := e.bySrc[d.Src]
		if ent == nil {
			return e.cfg.EnqCmdCycles, ErrNoEntry
		}
		e.clear(ent)
		return e.cfg.EnqCmdCycles, nil
	}
	return 0, fmt.Errorf("contighw: unknown op %d", d.Op)
}

func (e *Engine) migrate(d Descriptor) error {
	pages := d.SizePages
	if pages <= 0 {
		pages = 1
	}
	for i := uint64(0); i < uint64(pages); i++ {
		if e.bySrc[d.Src+i] != nil || e.byDst[d.Dst+i] != nil ||
			e.byDst[d.Src+i] != nil || e.bySrc[d.Dst+i] != nil {
			return ErrBusy
		}
	}
	if len(e.entries) >= e.cfg.EntriesPerSlice {
		return ErrTableFull
	}
	ent := &Entry{Src: d.Src, Dst: d.Dst, Pages: pages,
		copied: make([]uint64, pages), OnComplete: d.OnComplete}
	e.entries = append(e.entries, ent)
	for i := uint64(0); i < uint64(pages); i++ {
		e.bySrc[d.Src+i] = ent
		e.byDst[d.Dst+i] = ent
	}
	ent.active = true
	e.Migrations++
	if e.cfg.Mode == Noncacheable || d.StartCopy {
		ent.ph = phaseCopy
		e.startCopy(ent)
	} else {
		ent.ph = phaseRedirect
	}
	return nil
}

func (e *Engine) clear(ent *Entry) {
	for i := uint64(0); i < uint64(ent.Pages); i++ {
		delete(e.bySrc, ent.Src+i)
		delete(e.byDst, ent.Dst+i)
	}
	for i := range e.entries {
		if e.entries[i] == ent {
			e.entries[i] = e.entries[len(e.entries)-1]
			e.entries = e.entries[:len(e.entries)-1]
			break
		}
	}
	ent.active = false
	// Retire the source pages' LLC lines; the frames will be reused.
	for pg := uint64(0); pg < uint64(ent.Pages); pg++ {
		for i := 0; i < hw.LinesPerPage; i++ {
			e.h.DropLLC(hw.LineOfPage(ent.Src+pg, i))
		}
	}
}

// Lookup returns the active entry for a PPN (either side), or nil.
func (e *Engine) Lookup(ppn uint64) *Entry {
	if ent := e.bySrc[ppn]; ent != nil {
		return ent
	}
	return e.byDst[ppn]
}

// TableOccupancy returns the number of active entries.
func (e *Engine) TableOccupancy() int { return len(e.entries) }

// startCopy schedules the copy of every line, grouped by home slice:
// the paper's chained handoff runs slices one after another; the
// ParallelSlices ablation lets them overlap.
func (e *Engine) startCopy(ent *Entry) {
	type job struct {
		page   int
		offset int
		slice  int
	}
	bySlice := make([][]job, e.h.NumSlices())
	for pg := 0; pg < ent.Pages; pg++ {
		for i := 0; i < hw.LinesPerPage; i++ {
			s := e.h.SliceOf(hw.LineOfPage(ent.Src+uint64(pg), i))
			bySlice[s] = append(bySlice[s], job{page: pg, offset: i, slice: s})
		}
	}
	var maxDelay uint64
	delay := uint64(0)
	for s := range bySlice {
		if e.cfg.ParallelSlices {
			delay = 0
		}
		for _, j := range bySlice[s] {
			j := j
			delay += e.cfg.IssueIntervalCycles
			e.eng.After(delay, func() { e.copyLine(ent, j.page, j.offset, j.slice) })
		}
		if delay > maxDelay {
			maxDelay = delay
		}
	}
	// Completion check after the last line.
	e.eng.After(maxDelay+e.cfg.IssueIntervalCycles, func() { e.checkComplete(ent) })
}

// copyLine performs one line's migration: BusRdX on source and
// destination, the copy, and progress update. In cacheable mode a
// destination line that is Modified in a private cache is skipped — it
// already holds the newest data.
func (e *Engine) copyLine(ent *Entry, pageIdx, offset, sliceIdx int) {
	if !ent.active || ent.lineCopied(pageIdx, offset) {
		return
	}
	srcLine := hw.LineOfPage(ent.Src+uint64(pageIdx), offset)
	dstLine := hw.LineOfPage(ent.Dst+uint64(pageIdx), offset)

	var busy uint64
	if e.cfg.Mode == Cacheable && e.h.HasModifiedPrivate(dstLine) {
		e.LinesSkippedModified++
		busy = e.h.P.ContigLatency
	} else {
		val, _, c1 := e.h.CollectAndInvalidate(srcLine)
		_, _, c2 := e.h.CollectAndInvalidate(dstLine)
		c3 := e.h.WriteLLC(dstLine, val)
		busy = c1 + c2 + c3
		if e.h.SliceOf(dstLine) != sliceIdx {
			busy += 2*e.h.P.RingHopCycles + 4 // remote Write + Ack
		}
		e.LinesCopied++
	}
	ent.copied[pageIdx] |= 1 << uint(offset)
	e.CopyBusyCycles += busy
	e.h.AddSliceBusy(sliceIdx, e.eng.Now(), busy)
}

// checkComplete fires the completion flag once every line is processed.
func (e *Engine) checkComplete(ent *Entry) {
	if !ent.active || ent.Completion {
		return
	}
	done := true
	for _, w := range ent.copied {
		if w != ^uint64(0) {
			done = false
			break
		}
	}
	if done {
		ent.Completion = true
		if ent.OnComplete != nil {
			ent.OnComplete()
		}
		return
	}
	e.eng.After(e.cfg.IssueIntervalCycles*4, func() { e.checkComplete(ent) })
}

// Translate implements cache.Redirector: requests to either mapping of a
// page under migration are served from the copied line's destination or
// the uncopied line's source. In cacheable mode it also enforces the
// single-mapping invariant by invalidating opposite-mapping private
// copies; in noncacheable mode it collects any stale private copies
// left on cores that have not yet invalidated their TLB entry (the
// nack-and-retry path of §3.3).
func (e *Engine) Translate(line uint64) (uint64, uint64) {
	ppn := hw.PageOfLine(line)
	ent := e.Lookup(ppn)
	if ent == nil || !ent.active {
		return line, 0
	}
	pageIdx, _, ok := ent.pageIndexOf(ppn)
	if !ok {
		return line, 0
	}
	off := hw.LineIndexInPage(line)
	srcLine := hw.LineOfPage(ent.Src+uint64(pageIdx), off)
	dstLine := hw.LineOfPage(ent.Dst+uint64(pageIdx), off)
	canonical := srcLine
	if ent.ph == phaseCopy && ent.lineCopied(pageIdx, off) {
		canonical = dstLine
	}
	e.Redirects++

	var extra uint64
	opposite := srcLine
	if line == srcLine {
		opposite = dstLine
	}
	switch e.cfg.Mode {
	case Cacheable:
		// Single-mapping invariant: the opposite mapping must not stay
		// cached privately.
		if e.h.HasPrivate(opposite) {
			val, wasM, c := e.h.CollectAndInvalidate(opposite)
			extra += c
			if wasM {
				extra += e.h.WriteLLC(canonical, val)
			}
			e.OppositeInvalidations++
		}
	case Noncacheable:
		// Stale private copies under either mapping are collected into
		// the canonical location before the LLC serves the request.
		for _, l := range [2]uint64{srcLine, dstLine} {
			if e.h.HasPrivate(l) {
				val, wasM, c := e.h.CollectAndInvalidate(l)
				extra += c
				if wasM {
					extra += e.h.WriteLLC(canonical, val)
				}
			}
		}
	}
	return canonical, extra + e.h.P.ContigLatency
}

// Noncacheable implements cache.Redirector.
func (e *Engine) Noncacheable(line uint64) bool {
	if e.cfg.Mode != Noncacheable {
		return false
	}
	ent := e.Lookup(hw.PageOfLine(line))
	return ent != nil && ent.active
}
