package contighw

// Area and energy model for the metadata table, standing in for the
// paper's CACTI 7 analysis at a 22 nm node (§5.3): a small fully
// associative structure of 16 entries per slice. The coefficients are
// calibrated to CACTI-class outputs for tiny CAM+RAM arrays; the model
// reproduces the paper's headline numbers — 0.0038 mm² per slice,
// 0.0017 nJ per access, 0.64 mW leakage, ~0.014 % of a core's area.

// AreaModel parameterises the estimate.
type AreaModel struct {
	Entries int
	// Bits per entry: Src PPN + Dst PPN + Ptr + valid (+ phase).
	BitsPerEntry int
	// Per-bit coefficients at 22 nm for a small FA array.
	AreaUm2PerBit   float64
	EnergyPJPerBit  float64 // dynamic, per access
	LeakageUWPerBit float64
	// CoreAreaMM2 is a contemporary server core (with private caches)
	// at the same node, for the relative-cost claim.
	CoreAreaMM2 float64
}

// DefaultAreaModel matches the paper's configuration: 16 entries, 40-bit
// PPNs, 7-bit Ptr.
func DefaultAreaModel() AreaModel {
	return AreaModel{
		Entries:         16,
		BitsPerEntry:    40 + 40 + 7 + 2,
		AreaUm2PerBit:   2.67,
		EnergyPJPerBit:  0.019,
		LeakageUWPerBit: 0.449,
		CoreAreaMM2:     27.0,
	}
}

// TotalBits returns the table's storage bits.
func (m AreaModel) TotalBits() int { return m.Entries * m.BitsPerEntry }

// AreaMM2 returns the per-slice area in mm².
func (m AreaModel) AreaMM2() float64 {
	return float64(m.TotalBits()) * m.AreaUm2PerBit / 1e6
}

// EnergyNJPerAccess returns dynamic energy per access in nJ (one entry
// read/write plus the FA match).
func (m AreaModel) EnergyNJPerAccess() float64 {
	return float64(m.BitsPerEntry) * m.EnergyPJPerBit / 1e3
}

// LeakageMW returns static leakage in mW.
func (m AreaModel) LeakageMW() float64 {
	return float64(m.TotalBits()) * m.LeakageUWPerBit / 1e3
}

// FractionOfCore returns table area over core area.
func (m AreaModel) FractionOfCore() float64 {
	return m.AreaMM2() / m.CoreAreaMM2
}
