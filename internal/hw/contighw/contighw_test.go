package contighw

import (
	"math"
	"testing"

	"contiguitas/internal/hw"
	"contiguitas/internal/hw/cache"
	"contiguitas/internal/hw/dram"
	"contiguitas/internal/hw/engine"
	"contiguitas/internal/stats"
)

func newRig(mode Mode) (*Engine, *cache.Hierarchy, *engine.Engine) {
	p := hw.DefaultParams()
	h := cache.New(p, dram.New(dram.DefaultConfig()))
	eng := engine.New()
	e := New(DefaultConfig(mode), h, eng)
	return e, h, eng
}

// writePage stamps every line of a page with a recognisable value.
func writePage(h *cache.Hierarchy, ppn uint64, base uint64) {
	for i := 0; i < hw.LinesPerPage; i++ {
		h.WriteLLC(hw.LineOfPage(ppn, i), base+uint64(i))
	}
}

func TestMigrationCopiesWholePage(t *testing.T) {
	for _, mode := range []Mode{Noncacheable, Cacheable} {
		e, h, eng := newRig(mode)
		writePage(h, 100, 1000)
		done := false
		d := Descriptor{Op: OpMigrate, Src: 100, Dst: 200, StartCopy: true,
			OnComplete: func() { done = true }}
		if _, err := e.Submit(d); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if !done {
			t.Fatalf("%v: completion callback not fired", mode)
		}
		ent := e.Lookup(100)
		if ent == nil || !ent.Completion || ent.Ptr() != hw.LinesPerPage {
			t.Fatalf("%v: entry state wrong: %+v", mode, ent)
		}
		for i := 0; i < hw.LinesPerPage; i++ {
			v, _ := h.ReadLLC(hw.LineOfPage(200, i))
			if v != 1000+uint64(i) {
				t.Fatalf("%v: dst line %d = %d, want %d", mode, i, v, 1000+uint64(i))
			}
		}
		if _, err := e.Submit(Descriptor{Op: OpClear, Src: 100}); err != nil {
			t.Fatal(err)
		}
		if e.Lookup(100) != nil || e.TableOccupancy() != 0 {
			t.Fatal("clear must remove the entry")
		}
	}
}

func TestRedirectionDuringMigration(t *testing.T) {
	e, h, eng := newRig(Noncacheable)
	writePage(h, 100, 5000)
	if _, err := e.Submit(Descriptor{Op: OpMigrate, Src: 100, Dst: 200, StartCopy: true}); err != nil {
		t.Fatal(err)
	}
	// Interleave accesses with copy progress: every few engine steps,
	// read via the source mapping; values must always be current.
	for step := 0; step < 100; step++ {
		eng.RunUntil(eng.Now() + 100)
		off := step % hw.LinesPerPage
		pa := (uint64(100) << hw.PageShift) + uint64(off)*hw.LineBytes
		v, _ := h.Access(step%8, pa, false, 0, eng.Now())
		if v != 5000+uint64(off) {
			t.Fatalf("step %d: read %d via src mapping, want %d", step, v, 5000+uint64(off))
		}
	}
	eng.Run()
}

// TestMigrationLinearizability is the core correctness property of
// Contiguitas-HW: while a page migrates, cores read and write it through
// BOTH mappings (stale TLBs keep using the source PPN), and every read
// must observe the latest write to its line. Runs for both design
// points against a reference model.
func TestMigrationLinearizability(t *testing.T) {
	for _, mode := range []Mode{Noncacheable, Cacheable} {
		for seed := uint64(1); seed <= 5; seed++ {
			testLinearizability(t, mode, seed)
		}
	}
}

func testLinearizability(t *testing.T, mode Mode, seed uint64) {
	t.Helper()
	e, h, eng := newRig(mode)
	rng := stats.NewRNG(seed)
	ref := make([]uint64, hw.LinesPerPage)
	for i := 0; i < hw.LinesPerPage; i++ {
		ref[i] = 9000 + uint64(i)
		h.WriteLLC(hw.LineOfPage(300, i), ref[i])
	}
	// In cacheable mode, pre-warm some private copies under the source
	// mapping (the state the single-mapping invariant must handle).
	if mode == Cacheable {
		for i := 0; i < 16; i++ {
			pa := (uint64(300) << hw.PageShift) + uint64(i)*hw.LineBytes
			h.Access(i%8, pa, false, 0, 0)
		}
	}
	start := mode == Noncacheable
	if _, err := e.Submit(Descriptor{Op: OpMigrate, Src: 300, Dst: 400, StartCopy: start}); err != nil {
		t.Fatal(err)
	}
	if !start {
		// Cacheable flow: redirection phase first, then the copy.
		eng.After(500, func() {
			if _, err := e.Submit(Descriptor{Op: OpStartCopy, Src: 300}); err != nil {
				t.Fatal(err)
			}
		})
	}
	for step := 0; step < 600; step++ {
		eng.RunUntil(eng.Now() + uint64(rng.Intn(40)))
		off := rng.Intn(hw.LinesPerPage)
		// Half the cores still use the stale (source) mapping, half the
		// new (destination) mapping — exactly what lazy invalidation
		// produces.
		ppn := uint64(300)
		if rng.Bool(0.5) {
			ppn = 400
		}
		// In cacheable phase A only: the paper's flow has the OS flip
		// the PTE immediately, so both mappings occur there too.
		pa := (ppn << hw.PageShift) + uint64(off)*hw.LineBytes
		core := rng.Intn(8)
		if rng.Bool(0.35) {
			val := rng.Uint64()
			h.Access(core, pa, true, val, eng.Now())
			ref[off] = val
		} else {
			v, _ := h.Access(core, pa, false, 0, eng.Now())
			if v != ref[off] {
				t.Fatalf("mode=%v seed=%d step=%d: line %d read %d via ppn %d, want %d",
					mode, seed, step, off, v, ppn, ref[off])
			}
		}
	}
	eng.Run()
	// After completion every line must be readable at the destination
	// with its final value.
	for i := 0; i < hw.LinesPerPage; i++ {
		pa := (uint64(400) << hw.PageShift) + uint64(i)*hw.LineBytes
		v, _ := h.Access(i%8, pa, false, 0, eng.Now())
		if v != ref[i] {
			t.Fatalf("mode=%v seed=%d: final line %d = %d, want %d", mode, seed, i, v, ref[i])
		}
	}
}

func TestCacheableSkipsModifiedDestination(t *testing.T) {
	e, h, eng := newRig(Cacheable)
	writePage(h, 500, 100)
	if _, err := e.Submit(Descriptor{Op: OpMigrate, Src: 500, Dst: 600}); err != nil {
		t.Fatal(err)
	}
	// Phase A: a core writes line 3 via the destination mapping.
	pa := (uint64(600) << hw.PageShift) + 3*hw.LineBytes
	h.Access(0, pa, true, 4242, 0)
	if _, err := e.Submit(Descriptor{Op: OpStartCopy, Src: 500}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if e.LinesSkippedModified == 0 {
		t.Fatal("modified destination line must be skipped by the copy")
	}
	v, _ := h.Access(1, pa, false, 0, eng.Now())
	if v != 4242 {
		t.Fatalf("skipped line lost its data: %d", v)
	}
}

func TestNoncacheableBypassesPrivateCaches(t *testing.T) {
	e, h, eng := newRig(Noncacheable)
	writePage(h, 700, 1)
	if _, err := e.Submit(Descriptor{Op: OpMigrate, Src: 700, Dst: 800, StartCopy: true}); err != nil {
		t.Fatal(err)
	}
	pa := uint64(700) << hw.PageShift
	h.Access(0, pa, false, 0, 0)
	if h.HasPrivate(hw.LineOfPage(700, 0)) || h.HasPrivate(hw.LineOfPage(800, 0)) {
		t.Fatal("lines under migration must not be cached privately")
	}
	eng.Run()
	if _, err := e.Submit(Descriptor{Op: OpClear, Src: 700}); err != nil {
		t.Fatal(err)
	}
	// After the migration ends, caching resumes.
	h.Access(0, (uint64(800) << hw.PageShift), false, 0, eng.Now())
	if !h.HasPrivate(hw.LineOfPage(800, 0)) {
		t.Fatal("caching must resume after Clear")
	}
}

func TestTableCapacity(t *testing.T) {
	e, _, _ := newRig(Noncacheable)
	for i := uint64(0); i < 16; i++ {
		if _, err := e.Submit(Descriptor{Op: OpMigrate, Src: 1000 + i, Dst: 2000 + i}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Submit(Descriptor{Op: OpMigrate, Src: 5000, Dst: 6000}); err != ErrTableFull {
		t.Fatalf("17th migration: err = %v, want ErrTableFull", err)
	}
	if _, err := e.Submit(Descriptor{Op: OpClear, Src: 1000}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(Descriptor{Op: OpMigrate, Src: 5000, Dst: 6000}); err != nil {
		t.Fatalf("after clear: %v", err)
	}
}

func TestDuplicateMigrationRejected(t *testing.T) {
	e, _, _ := newRig(Noncacheable)
	if _, err := e.Submit(Descriptor{Op: OpMigrate, Src: 10, Dst: 20}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(Descriptor{Op: OpMigrate, Src: 10, Dst: 30}); err != ErrBusy {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	if _, err := e.Submit(Descriptor{Op: OpMigrate, Src: 99, Dst: 20}); err != ErrBusy {
		t.Fatalf("dst reuse: err = %v, want ErrBusy", err)
	}
	if _, err := e.Submit(Descriptor{Op: OpClear, Src: 12345}); err != ErrNoEntry {
		t.Fatalf("clear unknown: err = %v, want ErrNoEntry", err)
	}
}

func TestChainedVsParallelSlices(t *testing.T) {
	// The ablation of §3.3: parallel slices finish the copy faster than
	// the chained handoff the paper chooses.
	durations := map[bool]uint64{}
	for _, parallel := range []bool{false, true} {
		p := hw.DefaultParams()
		h := cache.New(p, dram.New(dram.DefaultConfig()))
		eng := engine.New()
		cfg := DefaultConfig(Noncacheable)
		cfg.ParallelSlices = parallel
		e := New(cfg, h, eng)
		writePage(h, 100, 0)
		var doneAt uint64
		if _, err := e.Submit(Descriptor{Op: OpMigrate, Src: 100, Dst: 200, StartCopy: true,
			OnComplete: func() { doneAt = eng.Now() }}); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		durations[parallel] = doneAt
	}
	if durations[true] >= durations[false] {
		t.Fatalf("parallel (%d) must beat chained (%d)", durations[true], durations[false])
	}
}

func TestMigrationDurationMatchesPaper(t *testing.T) {
	// §5.3: a 4KB migration costs ~2 µs (≈4000 cycles at 2 GHz).
	e, h, eng := newRig(Noncacheable)
	writePage(h, 100, 0)
	var doneAt uint64
	if _, err := e.Submit(Descriptor{Op: OpMigrate, Src: 100, Dst: 200, StartCopy: true,
		OnComplete: func() { doneAt = eng.Now() }}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	us := float64(doneAt) / 2000 // 2 GHz -> cycles per µs
	if us < 1 || us > 4 {
		t.Fatalf("4KB migration took %.2f µs, want ~2", us)
	}
}

func TestAreaModelMatchesPaper(t *testing.T) {
	m := DefaultAreaModel()
	if math.Abs(m.AreaMM2()-0.0038) > 0.0004 {
		t.Fatalf("area = %f mm², want ~0.0038", m.AreaMM2())
	}
	if math.Abs(m.EnergyNJPerAccess()-0.0017) > 0.0002 {
		t.Fatalf("energy = %f nJ, want ~0.0017", m.EnergyNJPerAccess())
	}
	if math.Abs(m.LeakageMW()-0.64) > 0.06 {
		t.Fatalf("leakage = %f mW, want ~0.64", m.LeakageMW())
	}
	frac := m.FractionOfCore()
	if frac < 0.00010 || frac > 0.00020 {
		t.Fatalf("fraction of core = %f, want ~0.00014 (0.014%%)", frac)
	}
}

func TestModeString(t *testing.T) {
	if Noncacheable.String() != "noncacheable" || Cacheable.String() != "cacheable" {
		t.Fatal("mode names")
	}
}

func TestVariableSizeBufferMigration(t *testing.T) {
	// §3.3 "Variable Buffer Sizes": one metadata entry covers a whole
	// multi-page device buffer. Migrate a 64KB (16-page) buffer and
	// interleave accesses through both mappings.
	e, h, eng := newRig(Noncacheable)
	const pages = 16
	ref := make(map[int]uint64)
	for pg := 0; pg < pages; pg++ {
		for i := 0; i < hw.LinesPerPage; i++ {
			v := uint64(pg*1000 + i)
			h.WriteLLC(hw.LineOfPage(uint64(3000+pg), i), v)
			ref[pg*hw.LinesPerPage+i] = v
		}
	}
	done := false
	if _, err := e.Submit(Descriptor{
		Op: OpMigrate, Src: 3000, Dst: 4000, SizePages: pages,
		StartCopy: true, OnComplete: func() { done = true },
	}); err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(77)
	for step := 0; step < 400; step++ {
		eng.RunUntil(eng.Now() + uint64(rng.Intn(200)))
		pg := rng.Intn(pages)
		off := rng.Intn(hw.LinesPerPage)
		base := uint64(3000)
		if rng.Bool(0.5) {
			base = 4000
		}
		pa := (base+uint64(pg))<<hw.PageShift + uint64(off)*hw.LineBytes
		if rng.Bool(0.3) {
			v := rng.Uint64()
			h.Access(rng.Intn(8), pa, true, v, eng.Now())
			ref[pg*hw.LinesPerPage+off] = v
		} else {
			v, _ := h.Access(rng.Intn(8), pa, false, 0, eng.Now())
			if v != ref[pg*hw.LinesPerPage+off] {
				t.Fatalf("step %d: page %d line %d read %d, want %d",
					step, pg, off, v, ref[pg*hw.LinesPerPage+off])
			}
		}
	}
	eng.Run()
	if !done {
		t.Fatal("range migration never completed")
	}
	ent := e.Lookup(3005) // any covered PPN resolves to the entry
	if ent == nil || ent.Ptr() != pages*hw.LinesPerPage {
		t.Fatalf("entry state: %+v", ent)
	}
	if _, err := e.Submit(Descriptor{Op: OpClear, Src: 3000}); err != nil {
		t.Fatal(err)
	}
	for pg := 0; pg < pages; pg++ {
		for i := 0; i < hw.LinesPerPage; i++ {
			pa := uint64(4000+pg)<<hw.PageShift + uint64(i)*hw.LineBytes
			v, _ := h.Access(0, pa, false, 0, eng.Now())
			if v != ref[pg*hw.LinesPerPage+i] {
				t.Fatalf("final page %d line %d = %d", pg, i, v)
			}
		}
	}
}

func TestVariableSizeRejectsOverlap(t *testing.T) {
	e, _, _ := newRig(Noncacheable)
	if _, err := e.Submit(Descriptor{Op: OpMigrate, Src: 100, Dst: 200, SizePages: 8}); err != nil {
		t.Fatal(err)
	}
	// Any overlap with the covered ranges is busy.
	if _, err := e.Submit(Descriptor{Op: OpMigrate, Src: 104, Dst: 300}); err != ErrBusy {
		t.Fatalf("src overlap: %v", err)
	}
	if _, err := e.Submit(Descriptor{Op: OpMigrate, Src: 400, Dst: 207}); err != ErrBusy {
		t.Fatalf("dst overlap: %v", err)
	}
	if _, err := e.Submit(Descriptor{Op: OpMigrate, Src: 400, Dst: 500}); err != nil {
		t.Fatalf("disjoint must be accepted: %v", err)
	}
}
