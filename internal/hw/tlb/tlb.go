// Package tlb models per-core translation hardware: a two-level
// set-associative TLB (64-entry L1, 1536-entry L2, Table 1), page-walk
// caches abstracted into a fixed walk latency, and the INVLPG operation
// whose measured ~250-cycle cost — a full pipeline flush — dominates
// TLB-shootdown handling (§4).
package tlb

import "contiguitas/internal/hw"

type entry struct {
	vpn   uint64
	ppn   uint64
	lru   uint64
	valid bool
}

// TLB is one set-associative translation buffer.
type TLB struct {
	sets    [][]entry
	mask    uint64
	lruTick uint64

	Hits, Misses uint64
}

// NewTLB builds a TLB with the given total entries and associativity.
func NewTLB(entries, ways int) *TLB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("tlb: entries must be a positive multiple of ways")
	}
	nsets := entries / ways
	t := &TLB{sets: make([][]entry, nsets), mask: uint64(nsets - 1)}
	for i := range t.sets {
		t.sets[i] = make([]entry, ways)
	}
	return t
}

func (t *TLB) tick() uint64 { t.lruTick++; return t.lruTick }

// Lookup returns the cached translation for vpn.
func (t *TLB) Lookup(vpn uint64) (uint64, bool) {
	set := t.sets[vpn&t.mask]
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].lru = t.tick()
			t.Hits++
			return set[i].ppn, true
		}
	}
	t.Misses++
	return 0, false
}

// Insert caches a translation, evicting the set's LRU entry.
func (t *TLB) Insert(vpn, ppn uint64) {
	set := t.sets[vpn&t.mask]
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = entry{vpn: vpn, ppn: ppn, lru: t.tick(), valid: true}
}

// Invalidate drops the translation for vpn, reporting whether it existed.
func (t *TLB) Invalidate(vpn uint64) bool {
	set := t.sets[vpn&t.mask]
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].valid = false
			return true
		}
	}
	return false
}

// Flush invalidates everything.
func (t *TLB) Flush() {
	for _, set := range t.sets {
		for i := range set {
			set[i].valid = false
		}
	}
}

// Resolver supplies authoritative translations on a page walk: the PPN
// backing vpn and whether the mapping is a 2 MB huge page (in which
// case the TLB caches one entry for the whole 2 MB region — the reach
// advantage everything in the paper is ultimately about).
type Resolver func(vpn uint64) (ppn uint64, huge bool)

// hugeTag distinguishes 2 MB entries in the shared second-level TLB.
const hugeTag = uint64(1) << 62

// PerCore is one core's translation hierarchy: split first-level TLBs
// for 4 KB and 2 MB pages (as on real cores), a unified second level,
// and page-walk caches abstracted into a fixed walk latency.
type PerCore struct {
	L1     *TLB // 4 KB entries
	L1Huge *TLB // 2 MB entries
	L2     *TLB // unified
	p      hw.Params

	// WalkCycles is the cost of a full page walk with warm page-walk
	// caches (PWC levels hit, one leaf access). Huge-page walks are one
	// level shorter.
	WalkCycles     uint64
	HugeWalkCycles uint64

	Walks     uint64
	HugeWalks uint64
}

// NewPerCore builds the Table 1 TLB hierarchy.
func NewPerCore(p hw.Params) *PerCore {
	return &PerCore{
		L1:             NewTLB(p.L1TLBEntries, p.L1TLBWays),
		L1Huge:         NewTLB(32, 4),
		L2:             NewTLB(p.L2TLBEntries, p.L2TLBWays),
		p:              p,
		WalkCycles:     3*p.PWCLatency + 64, // PWC hits + leaf PTE access
		HugeWalkCycles: 2*p.PWCLatency + 64,
	}
}

// Translate resolves vpn using the TLBs; resolve supplies the
// authoritative translation on a walk. Returns the base-page PPN and
// the lookup latency in cycles.
func (pc *PerCore) Translate(vpn uint64, resolve Resolver) (uint64, uint64) {
	if ppn, ok := pc.L1.Lookup(vpn); ok {
		return ppn, pc.p.L1TLBLatency
	}
	hvpn := vpn >> 9
	if hppn, ok := pc.L1Huge.Lookup(hvpn); ok {
		return hppn<<9 | vpn&0x1ff, pc.p.L1TLBLatency
	}
	if ppn, ok := pc.L2.Lookup(vpn); ok {
		pc.L1.Insert(vpn, ppn)
		return ppn, pc.p.L1TLBLatency + pc.p.L2TLBLatency
	}
	if hppn, ok := pc.L2.Lookup(hugeTag | hvpn); ok {
		pc.L1Huge.Insert(hvpn, hppn)
		return hppn<<9 | vpn&0x1ff, pc.p.L1TLBLatency + pc.p.L2TLBLatency
	}
	ppn, huge := resolve(vpn)
	if huge {
		pc.HugeWalks++
		hppn := ppn >> 9
		pc.L2.Insert(hugeTag|hvpn, hppn)
		pc.L1Huge.Insert(hvpn, hppn)
		return hppn<<9 | vpn&0x1ff, pc.p.L1TLBLatency + pc.p.L2TLBLatency + pc.HugeWalkCycles
	}
	pc.Walks++
	pc.L2.Insert(vpn, ppn)
	pc.L1.Insert(vpn, ppn)
	return ppn, pc.p.L1TLBLatency + pc.p.L2TLBLatency + pc.WalkCycles
}

// Invlpg invalidates vpn in every level (both page sizes), returning
// the instruction's cost — the ~250-cycle pipeline flush measured on
// real hardware, regardless of whether the entry was present.
func (pc *PerCore) Invlpg(vpn uint64) uint64 {
	pc.L1.Invalidate(vpn)
	pc.L1Huge.Invalidate(vpn >> 9)
	pc.L2.Invalidate(vpn)
	pc.L2.Invalidate(hugeTag | vpn>>9)
	return pc.p.INVLPGCycles
}

// Cached reports whether any level holds a translation covering vpn.
func (pc *PerCore) Cached(vpn uint64) bool {
	probe := func(t *TLB, key uint64) bool {
		set := t.sets[key&t.mask]
		for i := range set {
			if set[i].valid && set[i].vpn == key {
				return true
			}
		}
		return false
	}
	return probe(pc.L1, vpn) || probe(pc.L1Huge, vpn>>9) ||
		probe(pc.L2, vpn) || probe(pc.L2, hugeTag|vpn>>9)
}
