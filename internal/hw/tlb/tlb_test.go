package tlb

import (
	"testing"
	"testing/quick"

	"contiguitas/internal/hw"
)

func TestLookupInsertInvalidate(t *testing.T) {
	tb := NewTLB(64, 4)
	if _, ok := tb.Lookup(5); ok {
		t.Fatal("empty TLB must miss")
	}
	tb.Insert(5, 500)
	if ppn, ok := tb.Lookup(5); !ok || ppn != 500 {
		t.Fatalf("lookup = %d, %v", ppn, ok)
	}
	if !tb.Invalidate(5) {
		t.Fatal("invalidate must report presence")
	}
	if _, ok := tb.Lookup(5); ok {
		t.Fatal("invalidated entry must miss")
	}
	if tb.Invalidate(5) {
		t.Fatal("second invalidate must report absence")
	}
}

func TestLRUWithinSet(t *testing.T) {
	tb := NewTLB(8, 2) // 4 sets, 2 ways
	// Three VPNs mapping to set 0: 0, 4, 8.
	tb.Insert(0, 10)
	tb.Insert(4, 14)
	tb.Lookup(0) // touch 0 so 4 is LRU
	tb.Insert(8, 18)
	if _, ok := tb.Lookup(4); ok {
		t.Fatal("LRU way must have been evicted")
	}
	if _, ok := tb.Lookup(0); !ok {
		t.Fatal("recently used way must survive")
	}
}

func TestFlush(t *testing.T) {
	tb := NewTLB(16, 4)
	for i := uint64(0); i < 16; i++ {
		tb.Insert(i, i+100)
	}
	tb.Flush()
	for i := uint64(0); i < 16; i++ {
		if _, ok := tb.Lookup(i); ok {
			t.Fatal("flush must clear everything")
		}
	}
}

func TestNewTLBValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 4}, {64, 0}, {65, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewTLB(%v) must panic", bad)
				}
			}()
			NewTLB(bad[0], bad[1])
		}()
	}
}

func TestPerCoreTranslateHierarchy(t *testing.T) {
	pc := NewPerCore(hw.DefaultParams())
	pt := func(vpn uint64) (uint64, bool) { return vpn + 1000, false }

	ppn, lat := pc.Translate(7, pt)
	if ppn != 1007 {
		t.Fatalf("ppn = %d", ppn)
	}
	walkLat := lat
	if pc.Walks != 1 {
		t.Fatalf("walks = %d", pc.Walks)
	}
	// Second lookup: L1 hit, much cheaper.
	_, lat = pc.Translate(7, pt)
	if lat >= walkLat || lat != pc.p.L1TLBLatency {
		t.Fatalf("L1 hit latency = %d", lat)
	}
	if pc.Walks != 1 {
		t.Fatal("hit must not walk")
	}
}

func TestPerCoreL2Backstop(t *testing.T) {
	pc := NewPerCore(hw.DefaultParams())
	pt := func(vpn uint64) (uint64, bool) { return vpn, false }
	// Fill far beyond L1 capacity (64) but within L2 (1536).
	for vpn := uint64(0); vpn < 1000; vpn++ {
		pc.Translate(vpn, pt)
	}
	walks := pc.Walks
	// Revisit: most should hit in L2 without walking.
	for vpn := uint64(0); vpn < 1000; vpn++ {
		pc.Translate(vpn, pt)
	}
	if pc.Walks != walks {
		t.Fatalf("revisit walked %d more times; L2 should backstop", pc.Walks-walks)
	}
}

func TestInvlpgCostAndEffect(t *testing.T) {
	p := hw.DefaultParams()
	pc := NewPerCore(p)
	pt := func(vpn uint64) (uint64, bool) { return vpn, false }
	pc.Translate(3, pt)
	if !pc.Cached(3) {
		t.Fatal("must be cached")
	}
	if cost := pc.Invlpg(3); cost != p.INVLPGCycles {
		t.Fatalf("invlpg cost = %d, want %d (pipeline flush)", cost, p.INVLPGCycles)
	}
	if pc.Cached(3) {
		t.Fatal("invlpg must clear both levels")
	}
	// Invlpg of an absent entry still costs the full flush.
	if cost := pc.Invlpg(999); cost != p.INVLPGCycles {
		t.Fatal("invlpg cost must be paid regardless of presence")
	}
}

func TestHugePageTranslation(t *testing.T) {
	pc := NewPerCore(hw.DefaultParams())
	resolve := func(vpn uint64) (uint64, bool) {
		// The whole space is backed by huge pages at ppn2m = vpn2m+100.
		return ((vpn>>9)+100)<<9 | vpn&0x1ff, true
	}
	// First access walks (huge walk, one level shorter).
	ppn, lat := pc.Translate(3<<9|7, resolve)
	if ppn != (3+100)<<9|7 {
		t.Fatalf("ppn = %d", ppn)
	}
	if pc.HugeWalks != 1 || pc.Walks != 0 {
		t.Fatalf("walks: huge=%d base=%d", pc.HugeWalks, pc.Walks)
	}
	walkLat := lat
	// Any other page inside the same 2MB region hits the huge entry.
	_, lat = pc.Translate(3<<9|400, resolve)
	if lat >= walkLat || pc.HugeWalks != 1 {
		t.Fatalf("second access within region must hit: lat=%d walks=%d", lat, pc.HugeWalks)
	}
}

func TestHugePageReach(t *testing.T) {
	// 512 base pages of distinct regions blow out the 64-entry L1 4K
	// TLB, but 2MB mappings cover the same footprint with one entry per
	// region: far fewer walks on revisit.
	p := hw.DefaultParams()
	resolve4k := func(vpn uint64) (uint64, bool) { return vpn, false }
	resolve2m := func(vpn uint64) (uint64, bool) { return vpn, true }

	pc4 := NewPerCore(p)
	pc2 := NewPerCore(p)
	// Touch 4096 pages spread over 8 x 2MB regions, twice.
	for pass := 0; pass < 2; pass++ {
		for i := uint64(0); i < 4096; i++ {
			pc4.Translate(i, resolve4k)
			pc2.Translate(i, resolve2m)
		}
	}
	if pc2.HugeWalks >= pc4.Walks/10 {
		t.Fatalf("huge pages must slash walks: 4K=%d 2M=%d", pc4.Walks, pc2.HugeWalks)
	}
}

func TestInvlpgCoversHugeEntries(t *testing.T) {
	pc := NewPerCore(hw.DefaultParams())
	resolve := func(vpn uint64) (uint64, bool) { return vpn, true }
	pc.Translate(5<<9, resolve)
	if !pc.Cached(5 << 9) {
		t.Fatal("huge entry must be cached")
	}
	pc.Invlpg(5 << 9)
	if pc.Cached(5 << 9) {
		t.Fatal("invlpg must drop huge entries too")
	}
}

func TestQuickTLBLookupAfterInsert(t *testing.T) {
	f := func(vpns []uint64) bool {
		tb := NewTLB(64, 4)
		seen := map[uint64]uint64{}
		for i, vpn := range vpns {
			vpn %= 1 << 40
			tb.Insert(vpn, uint64(i))
			seen[vpn] = uint64(i)
			// The just-inserted entry must be immediately visible.
			if ppn, ok := tb.Lookup(vpn); !ok || ppn != uint64(i) {
				return false
			}
		}
		// Any hit must return the most recent mapping.
		for vpn, want := range seen {
			if ppn, ok := tb.Lookup(vpn); ok && ppn != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
