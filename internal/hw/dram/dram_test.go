package dram

import "testing"

func TestRowHitCheaperThanMiss(t *testing.T) {
	d := New(DefaultConfig())
	first := d.Access(0, 0)
	// Same bank (lines interleave across 16 banks) and same row.
	second := d.Access(16*64, first)
	if second-first >= first-0 {
		t.Fatalf("row hit (%d) not cheaper than opening (%d)", second-first, first)
	}
	if d.RowHitRate() != 0.5 {
		t.Fatalf("hit rate = %v", d.RowHitRate())
	}
}

func TestBankConflictQueues(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	// Two back-to-back accesses to the same bank: second waits.
	a := d.Access(0, 0)
	b := d.Access(cfg.RowBytes*uint64(cfg.Banks), 0) // same bank, other row
	if b <= a {
		t.Fatalf("conflicting access done at %d, first at %d", b, a)
	}
}

func TestBankInterleavingParallel(t *testing.T) {
	d := New(DefaultConfig())
	a := d.Access(0, 0)
	b := d.Access(64, 0) // adjacent line: different bank
	if b > a+1 {
		t.Fatalf("different banks must not serialise: %d vs %d", b, a)
	}
}

func TestNewPanicsWithoutBanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Banks: 0})
}
