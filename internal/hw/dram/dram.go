// Package dram models main-memory timing at the level the cache
// simulator needs: per-bank row buffers with open-page policy and bank
// busy tracking, configured as the paper's DDR4-3200 with 16 banks.
// Latencies are expressed in CPU cycles (2 GHz core, Table 1).
package dram

// Config sets the timing parameters.
type Config struct {
	Banks int
	// RowBytes is the row-buffer size, determining row-hit locality.
	RowBytes uint64
	// RowHitCycles / RowMissCycles are access latencies in CPU cycles.
	RowHitCycles  uint64
	RowMissCycles uint64
	// BankBusyCycles is the bank occupancy per access (tRC-ish).
	BankBusyCycles uint64
}

// DefaultConfig approximates DDR4-3200 behind a 2 GHz core.
func DefaultConfig() Config {
	return Config{
		Banks:          16,
		RowBytes:       8192,
		RowHitCycles:   60,
		RowMissCycles:  110,
		BankBusyCycles: 24,
	}
}

// DRAM is the memory device model.
type DRAM struct {
	cfg       Config
	openRow   []uint64
	rowValid  []bool
	busyUntil []uint64

	Accesses uint64
	RowHits  uint64
}

// New builds a DRAM model.
func New(cfg Config) *DRAM {
	if cfg.Banks <= 0 {
		panic("dram: need at least one bank")
	}
	return &DRAM{
		cfg:       cfg,
		openRow:   make([]uint64, cfg.Banks),
		rowValid:  make([]bool, cfg.Banks),
		busyUntil: make([]uint64, cfg.Banks),
	}
}

// Access simulates one line access to physical address pa starting at
// cycle now; it returns the completion cycle. Bank interleaving is by
// line address; row hits are cheaper than row openings; a busy bank
// queues the request.
func (d *DRAM) Access(pa uint64, now uint64) uint64 {
	d.Accesses++
	line := pa >> 6
	bank := int(line % uint64(d.cfg.Banks))
	row := pa / d.cfg.RowBytes

	start := now
	if d.busyUntil[bank] > start {
		start = d.busyUntil[bank]
	}
	lat := d.cfg.RowMissCycles
	if d.rowValid[bank] && d.openRow[bank] == row {
		lat = d.cfg.RowHitCycles
		d.RowHits++
	}
	d.openRow[bank] = row
	d.rowValid[bank] = true
	done := start + lat
	d.busyUntil[bank] = start + d.cfg.BankBusyCycles
	return done
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (d *DRAM) RowHitRate() float64 {
	if d.Accesses == 0 {
		return 0
	}
	return float64(d.RowHits) / float64(d.Accesses)
}
