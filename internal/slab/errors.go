package slab

import "errors"

// Typed sentinel errors for reachable slab failure paths, mirroring
// internal/kernel/errors.go. Each is recoverable: cache state is
// untouched when one is returned. The only remaining panic in the
// package (Alloc's partial-page scan) is a provably-unreachable
// invariant violation, marked with a comment at the site.
var (
	// ErrInvalidHandle reports a Free of a zero/invalid object handle.
	ErrInvalidHandle = errors.New("slab: invalid object handle")

	// ErrDoubleFree reports a Free of a slot that is already free.
	ErrDoubleFree = errors.New("slab: double free")

	// ErrBadObjectSize reports a NewCache with a non-positive object
	// size.
	ErrBadObjectSize = errors.New("slab: object size must be positive")
)
