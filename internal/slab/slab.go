// Package slab implements a small-object allocator in the style of the
// Linux kernel's slab/SLUB: size-class caches pack kernel objects into
// pages obtained from the page allocator. Slab is the paper's
// second-largest source of unmovable memory (Figure 6: ~12 %), and its
// defining pathology is modelled faithfully here: a slab page is
// unmovable for as long as *any* object in it lives, so one long-lived
// object (a dentry, a socket) pins an entire page — the mechanism that
// turns a trickle of immortal objects into a standing population of
// scattered unmovable pages on the Linux layout.
package slab

import (
	"fmt"
	"math/bits"

	"contiguitas/internal/kernel"
	"contiguitas/internal/mem"
)

// PageSource abstracts the page allocator a cache draws from; the
// simulated kernel satisfies it directly.
type PageSource interface {
	Alloc(order int, mt mem.MigrateType, src mem.Source) (*kernel.Page, error)
	Free(p *kernel.Page) error
}

// slabPage is one backing page with its occupancy bitmap.
type slabPage struct {
	page *kernel.Page
	// used marks live object slots; one bit per slot.
	used []uint64
	live int
	// listIdx locates the page in the cache's partial list, or -1.
	listIdx int
}

// Obj is a handle to one allocated object.
type Obj struct {
	sp   *slabPage
	slot int
}

// Valid reports whether the handle refers to a live allocation.
func (o Obj) Valid() bool { return o.sp != nil }

// Cache is one size class (a kmem_cache).
type Cache struct {
	name     string
	objSize  int
	perPage  int
	src      PageSource
	gfpOrder int

	// partial holds pages with at least one free slot; fully occupied
	// pages are off-list and identified by listIdx == -1, so no separate
	// full set is needed.
	partial []*slabPage

	// Stats.
	Objects    int
	PagesHeld  int
	PagesGrown uint64
	PagesFreed uint64
	AllocCalls uint64
	FreeCalls  uint64

	// restoreIdx is the transient PFN → page index a checkpoint restore
	// builds (see snapshot.go); nil outside a restore window.
	restoreIdx map[uint64]*slabPage
}

// NewCache builds a size class. Object sizes above half a page grow the
// cache with higher-order pages, like SLUB's calculate_order. A
// non-positive object size returns ErrBadObjectSize.
func NewCache(name string, objSize int, src PageSource) (*Cache, error) {
	if objSize <= 0 {
		return nil, fmt.Errorf("%w: cache %q size %d", ErrBadObjectSize, name, objSize)
	}
	order := 0
	pageBytes := mem.PageSize
	for objSize > pageBytes/2 && order < 3 {
		order++
		pageBytes *= 2
	}
	perPage := pageBytes / objSize
	if perPage < 1 {
		perPage = 1
	}
	return &Cache{
		name:     name,
		objSize:  objSize,
		perPage:  perPage,
		src:      src,
		gfpOrder: order,
	}, nil
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// ObjSize returns the size class in bytes.
func (c *Cache) ObjSize() int { return c.objSize }

// ObjectsPerPage returns the packing density.
func (c *Cache) ObjectsPerPage() int { return c.perPage }

// Alloc returns one object, growing the cache by a page when every
// existing slab is full.
func (c *Cache) Alloc() (Obj, error) {
	c.AllocCalls++
	if len(c.partial) == 0 {
		if err := c.grow(); err != nil {
			return Obj{}, err
		}
	}
	sp := c.partial[len(c.partial)-1]
	slot := sp.findFree()
	if slot < 0 {
		// Provably unreachable: a page is removed from the partial list
		// the moment its last slot fills (Alloc below) and re-added the
		// moment a slot frees (Free), so every listed page has a free
		// slot by construction.
		panic("slab: partial page without a free slot")
	}
	sp.used[slot/64] |= 1 << uint(slot%64)
	sp.live++
	c.Objects++
	if sp.live == c.perPage {
		c.removePartial(sp)
	}
	return Obj{sp: sp, slot: slot}, nil
}

// Free releases an object. When its page empties, the page returns to
// the page allocator — only then does the memory stop being unmovable.
// Invalid handles and double frees return typed errors with the cache
// untouched.
func (c *Cache) Free(o Obj) error {
	if !o.Valid() {
		return fmt.Errorf("%w: cache %s", ErrInvalidHandle, c.name)
	}
	c.FreeCalls++
	sp := o.sp
	mask := uint64(1) << uint(o.slot%64)
	if sp.used[o.slot/64]&mask == 0 {
		return fmt.Errorf("%w: cache %s slot %d", ErrDoubleFree, c.name, o.slot)
	}
	sp.used[o.slot/64] &^= mask
	sp.live--
	c.Objects--
	if sp.listIdx < 0 {
		// The page was full; it has a free slot again.
		c.addPartial(sp)
	}
	if sp.live == 0 {
		c.removePartial(sp)
		if err := c.src.Free(sp.page); err != nil {
			// The kernel page was validated when grow obtained it; a
			// failing free means corrupt bookkeeping, not a recoverable
			// caller mistake.
			panic("slab: invariant violation: " + err.Error())
		}
		c.PagesHeld--
		c.PagesFreed++
	}
	return nil
}

// grow obtains one more backing page.
func (c *Cache) grow() error {
	p, err := c.src.Alloc(c.gfpOrder, mem.MigrateUnmovable, mem.SrcSlab)
	if err != nil {
		return fmt.Errorf("slab %s: grow: %w", c.name, err)
	}
	sp := &slabPage{
		page: p,
		used: make([]uint64, (c.perPage+63)/64),
	}
	c.addPartial(sp)
	c.PagesHeld++
	c.PagesGrown++
	return nil
}

func (c *Cache) addPartial(sp *slabPage) {
	sp.listIdx = len(c.partial)
	c.partial = append(c.partial, sp)
}

func (c *Cache) removePartial(sp *slabPage) {
	i := sp.listIdx
	last := len(c.partial) - 1
	if i != last {
		moved := c.partial[last]
		c.partial[i] = moved
		moved.listIdx = i
	}
	c.partial = c.partial[:last]
	sp.listIdx = -1
}

// findFree returns the first free slot index, or -1.
func (sp *slabPage) findFree() int {
	for w, word := range sp.used {
		if inv := ^word; inv != 0 {
			slot := w*64 + bits.TrailingZeros64(inv)
			return slot
		}
	}
	return -1
}

// Frames returns the 4 KB frames currently held as backing pages (each
// backing page spans 2^gfpOrder frames).
func (c *Cache) Frames() int { return c.PagesHeld << c.gfpOrder }

// Utilization is live objects over capacity across held pages — the
// packing efficiency whose complement is the internal fragmentation
// that keeps nearly-empty pages pinned.
func (c *Cache) Utilization() float64 {
	if c.PagesHeld == 0 {
		return 0
	}
	return float64(c.Objects) / float64(c.PagesHeld*c.perPage)
}

// Manager is a set of standard size classes, like /proc/slabinfo's
// kmalloc caches plus the named object caches networking and VFS churn.
type Manager struct {
	caches []*Cache
}

// StandardClasses mirrors the object sizes that dominate kernel slab
// usage: sk_buff heads, dentries, inodes, and the kmalloc ladder.
var StandardClasses = []struct {
	Name string
	Size int
}{
	{"kmalloc-64", 64},
	{"kmalloc-192", 192},
	{"skbuff_head", 256},
	{"dentry", 320},
	{"sock", 768},
	{"inode", 1024},
	{"kmalloc-2k", 2048},
}

// NewManager builds the standard caches over one page source.
func NewManager(src PageSource) *Manager {
	m := &Manager{}
	for _, cl := range StandardClasses {
		c, err := NewCache(cl.Name, cl.Size, src)
		if err != nil {
			// Provably unreachable: StandardClasses sizes are positive
			// compile-time constants.
			panic(err)
		}
		m.caches = append(m.caches, c)
	}
	return m
}

// Cache returns the i-th class.
func (m *Manager) Cache(i int) *Cache { return m.caches[i] }

// NumCaches returns the class count.
func (m *Manager) NumCaches() int { return len(m.caches) }

// PagesHeld sums backing frames across classes.
func (m *Manager) PagesHeld() int {
	n := 0
	for _, c := range m.caches {
		n += c.Frames()
	}
	return n
}

// Objects sums live objects across classes.
func (m *Manager) Objects() int {
	n := 0
	for _, c := range m.caches {
		n += c.Objects
	}
	return n
}
