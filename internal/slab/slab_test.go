package slab

import (
	"errors"
	"testing"
	"testing/quick"

	"contiguitas/internal/kernel"
	"contiguitas/internal/mem"
	"contiguitas/internal/stats"
)

func mustCache(t *testing.T, name string, size int, src PageSource) *Cache {
	t.Helper()
	c, err := NewCache(name, size, src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testKernel() *kernel.Kernel {
	cfg := kernel.DefaultConfig(kernel.ModeContiguitas)
	cfg.MemBytes = 128 << 20
	cfg.InitialUnmovableBytes = 32 << 20
	cfg.MinUnmovableBytes = 8 << 20
	cfg.MaxUnmovableBytes = 64 << 20
	return kernel.New(cfg)
}

func TestPackingDensity(t *testing.T) {
	k := testKernel()
	c := mustCache(t, "dentry", 320, k)
	if c.ObjectsPerPage() != 4096/320 {
		t.Fatalf("objects per page = %d", c.ObjectsPerPage())
	}
	// Fill exactly one page's worth: one backing page only.
	var objs []Obj
	for i := 0; i < c.ObjectsPerPage(); i++ {
		o, err := c.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, o)
	}
	if c.PagesHeld != 1 {
		t.Fatalf("pages held = %d, want 1", c.PagesHeld)
	}
	// One more object grows the cache.
	if _, err := c.Alloc(); err != nil {
		t.Fatal(err)
	}
	if c.PagesHeld != 2 {
		t.Fatalf("pages held = %d, want 2", c.PagesHeld)
	}
	_ = objs
}

func TestPageReleasedWhenEmpty(t *testing.T) {
	k := testKernel()
	c := mustCache(t, "sock", 768, k)
	before := k.FreePages()
	var objs []Obj
	for i := 0; i < c.ObjectsPerPage(); i++ {
		o, _ := c.Alloc()
		objs = append(objs, o)
	}
	for _, o := range objs {
		c.Free(o)
	}
	if c.PagesHeld != 0 || c.Objects != 0 {
		t.Fatalf("held=%d objects=%d after freeing all", c.PagesHeld, c.Objects)
	}
	if k.FreePages() != before {
		t.Fatal("backing page not returned to the kernel")
	}
	if c.PagesFreed != 1 {
		t.Fatalf("pages freed = %d", c.PagesFreed)
	}
}

func TestOneImmortalObjectPinsThePage(t *testing.T) {
	// The paper's slab pathology: free every object except one, and the
	// page remains allocated (unmovable) indefinitely.
	k := testKernel()
	c := mustCache(t, "dentry", 320, k)
	var objs []Obj
	for i := 0; i < c.ObjectsPerPage(); i++ {
		o, _ := c.Alloc()
		objs = append(objs, o)
	}
	for _, o := range objs[1:] {
		c.Free(o)
	}
	if c.PagesHeld != 1 {
		t.Fatalf("pages held = %d; one immortal object must pin the page", c.PagesHeld)
	}
	if u := c.Utilization(); u >= 0.1 {
		t.Fatalf("utilization = %v, want tiny (one object on a page)", u)
	}
	st := k.PM().Scan([]int{mem.Order2M})
	if st.UnmovableFrames == 0 {
		t.Fatal("the pinned slab page must scan as unmovable")
	}
}

func TestDoubleFreeError(t *testing.T) {
	k := testKernel()
	c := mustCache(t, "kmalloc-64", 64, k)
	o, _ := c.Alloc()
	if err := c.Free(o); err != nil {
		t.Fatal(err)
	}
	if err := c.Free(o); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("double free: got %v, want ErrDoubleFree", err)
	}
}

func TestInvalidHandleError(t *testing.T) {
	k := testKernel()
	c := mustCache(t, "kmalloc-64", 64, k)
	if err := c.Free(Obj{}); !errors.Is(err, ErrInvalidHandle) {
		t.Fatalf("invalid handle: got %v, want ErrInvalidHandle", err)
	}
}

func TestLargeObjectsUseHigherOrders(t *testing.T) {
	k := testKernel()
	c := mustCache(t, "kmalloc-4k", 4096, k)
	if c.gfpOrder == 0 {
		t.Fatal("4KB objects should use a compound page")
	}
	o, err := c.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if c.ObjectsPerPage() < 2 {
		t.Fatalf("objects per slab = %d", c.ObjectsPerPage())
	}
	c.Free(o)
}

func TestNewCacheValidation(t *testing.T) {
	if _, err := NewCache("bad", 0, testKernel()); !errors.Is(err, ErrBadObjectSize) {
		t.Fatalf("got %v, want ErrBadObjectSize", err)
	}
}

func TestManagerClasses(t *testing.T) {
	k := testKernel()
	m := NewManager(k)
	if m.NumCaches() != len(StandardClasses) {
		t.Fatal("class count")
	}
	var objs []Obj
	var caches []*Cache
	for i := 0; i < m.NumCaches(); i++ {
		c := m.Cache(i)
		if c.Name() != StandardClasses[i].Name || c.ObjSize() != StandardClasses[i].Size {
			t.Fatal("class metadata")
		}
		o, err := c.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, o)
		caches = append(caches, c)
	}
	if m.Objects() != m.NumCaches() {
		t.Fatalf("objects = %d", m.Objects())
	}
	if m.PagesHeld() < m.NumCaches() {
		t.Fatalf("pages held = %d", m.PagesHeld())
	}
	for i, o := range objs {
		caches[i].Free(o)
	}
	if m.PagesHeld() != 0 || m.Objects() != 0 {
		t.Fatal("manager not empty after frees")
	}
}

// TestQuickSlabConservation: any alloc/free sequence keeps the object
// count, per-page occupancy, and backing pages mutually consistent, and
// freeing everything returns every page.
func TestQuickSlabConservation(t *testing.T) {
	f := func(seed uint64) bool {
		k := testKernel()
		free := k.FreePages()
		c := mustCache(t, "dentry", 320, k)
		rng := stats.NewRNG(seed)
		var live []Obj
		for i := 0; i < 2000; i++ {
			if rng.Bool(0.6) || len(live) == 0 {
				o, err := c.Alloc()
				if err != nil {
					return false
				}
				live = append(live, o)
			} else {
				j := rng.Intn(len(live))
				c.Free(live[j])
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if c.Objects != len(live) {
				return false
			}
			// Density bound: pages never exceed what the object count
			// strictly requires plus the partially-filled tail.
			minPages := (len(live) + c.ObjectsPerPage() - 1) / c.ObjectsPerPage()
			if c.PagesHeld < minPages {
				return false
			}
		}
		for _, o := range live {
			c.Free(o)
		}
		return c.PagesHeld == 0 && k.FreePages() == free
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestSlabFragmentationUnderChurn reproduces the headline behaviour:
// random-lifetime churn leaves pages far below full occupancy, so the
// cache holds many more pages than a perfect packing would need — each
// of them unmovable.
func TestSlabFragmentationUnderChurn(t *testing.T) {
	k := testKernel()
	c := mustCache(t, "dentry", 320, k)
	rng := stats.NewRNG(12)
	var live []Obj
	// Grow to 4000 objects, then churn 50% turnover several times.
	for i := 0; i < 4000; i++ {
		o, err := c.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, o)
	}
	for round := 0; round < 6; round++ {
		for i := 0; i < 2000; i++ {
			j := rng.Intn(len(live))
			c.Free(live[j])
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		for i := 0; i < 2000; i++ {
			o, err := c.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, o)
		}
	}
	// Final die-off: half the objects go away at random. The survivors
	// are scattered across pages, each of which stays pinned — the
	// immortal-tail effect.
	for i := 0; i < 2000; i++ {
		j := rng.Intn(len(live))
		c.Free(live[j])
		live[j] = live[len(live)-1]
		live = live[:len(live)-1]
	}
	minPages := (len(live) + c.ObjectsPerPage() - 1) / c.ObjectsPerPage()
	if c.PagesHeld < 2*minPages {
		t.Fatalf("die-off should leave heavy slack: held=%d perfect=%d", c.PagesHeld, minPages)
	}
	if u := c.Utilization(); u > 0.8 {
		t.Fatalf("utilization = %v; die-off must leave holes", u)
	}
}
