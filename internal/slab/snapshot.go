package slab

import (
	"fmt"
	"sort"

	"contiguitas/internal/kernel"
)

// Checkpoint/restore for slab caches.
//
// A cache tracks only its partial pages; full pages are off-list and
// reachable solely through the Obj handles its callers hold. ExportState
// therefore takes the caller's live handles and discovers full pages
// through them. Restore rebuilds the partial list in exact serialized
// order (Alloc pops from the slice end, so order is behavior), recreates
// full pages, and keeps a temporary PFN index so callers can rehydrate
// their Obj handles with ObjAt before EndRestore drops it.

// SlabPageState is one serialized backing page.
type SlabPageState struct {
	PFN  uint64 // head PFN of the kernel page backing this slab
	Used []uint64
	Live int
	// Partial is true when the page sits on the partial list; such
	// pages appear in CacheState.Pages in exact partial-list order,
	// before any full pages.
	Partial bool
}

// CacheState is one serialized size class. Geometry (name, object size,
// packing) is configuration re-created by NewCache/NewManager, not
// state; only occupancy and counters are serialized.
type CacheState struct {
	Name string
	// Pages lists partial pages first (in partial-list order), then
	// full pages sorted by PFN for determinism.
	Pages []SlabPageState

	Objects    int
	PagesHeld  int
	PagesGrown uint64
	PagesFreed uint64
	AllocCalls uint64
	FreeCalls  uint64
}

// ExportState serializes the cache. liveObjs must include every handle
// the caller still holds (duplicates and handles from other caches are
// ignored); they are how full pages — invisible to the cache itself —
// are found.
func (c *Cache) ExportState(liveObjs []Obj) CacheState {
	st := CacheState{
		Name:       c.name,
		Objects:    c.Objects,
		PagesHeld:  c.PagesHeld,
		PagesGrown: c.PagesGrown,
		PagesFreed: c.PagesFreed,
		AllocCalls: c.AllocCalls,
		FreeCalls:  c.FreeCalls,
	}
	seen := make(map[*slabPage]bool, len(c.partial))
	for _, sp := range c.partial {
		seen[sp] = true
		st.Pages = append(st.Pages, exportPage(sp, true))
	}
	var full []*slabPage
	for _, o := range liveObjs {
		if o.sp == nil || seen[o.sp] || o.sp.listIdx >= 0 {
			continue
		}
		// Only adopt pages that belong to this cache: a full page's
		// capacity matches the cache's bitmap geometry and its handle
		// appears once.
		if !ownsPage(c, o.sp) {
			continue
		}
		seen[o.sp] = true
		full = append(full, o.sp)
	}
	sort.Slice(full, func(i, j int) bool { return full[i].page.PFN < full[j].page.PFN })
	for _, sp := range full {
		st.Pages = append(st.Pages, exportPage(sp, false))
	}
	return st
}

func exportPage(sp *slabPage, partial bool) SlabPageState {
	return SlabPageState{
		PFN:     sp.page.PFN,
		Used:    append([]uint64(nil), sp.used...),
		Live:    sp.live,
		Partial: partial,
	}
}

// ownsPage reports whether sp plausibly belongs to c. Callers holding
// objects from several caches pass them all to each ExportState; pages
// are disambiguated by checking membership of sp in c via bitmap length
// and live count — but since two caches can share geometry, the caller
// should group handles per cache (workload.Runner does). This check is
// a safety net, not the primary discriminator.
func ownsPage(c *Cache, sp *slabPage) bool {
	return len(sp.used) == (c.perPage+63)/64 && sp.live <= c.perPage
}

// restoreIdx maps PFN → restored page between ImportState and
// EndRestore, letting callers rehydrate Obj handles with ObjAt.
//
// It lives on the Cache but is transient: EndRestore drops it.

// ImportState rebuilds the cache's occupancy from serialized state. The
// cache must be freshly constructed (same name/size/source class as the
// exported one) and empty. resolve maps a serialized head PFN to the
// restored kernel page handle backing it.
func (c *Cache) ImportState(st CacheState, resolve func(pfn uint64) *kernel.Page) error {
	if c.Objects != 0 || len(c.partial) != 0 || c.PagesHeld != 0 {
		return fmt.Errorf("slab: ImportState into non-empty cache %s", c.name)
	}
	if st.Name != c.name {
		return fmt.Errorf("slab: ImportState cache %s from state for %s", c.name, st.Name)
	}
	c.restoreIdx = make(map[uint64]*slabPage, len(st.Pages))
	for _, ps := range st.Pages {
		page := resolve(ps.PFN)
		if page == nil {
			return fmt.Errorf("slab: restore %s: no live page at pfn %d", c.name, ps.PFN)
		}
		if len(ps.Used) != (c.perPage+63)/64 {
			return fmt.Errorf("slab: restore %s: bitmap length %d, want %d", c.name, len(ps.Used), (c.perPage+63)/64)
		}
		live := 0
		for _, w := range ps.Used {
			for ; w != 0; w &= w - 1 {
				live++
			}
		}
		if live != ps.Live || live > c.perPage {
			return fmt.Errorf("slab: restore %s pfn %d: bitmap holds %d live, serialized %d (perPage %d)",
				c.name, ps.PFN, live, ps.Live, c.perPage)
		}
		if ps.Partial != (live < c.perPage) {
			return fmt.Errorf("slab: restore %s pfn %d: partial flag %v disagrees with occupancy %d/%d",
				c.name, ps.PFN, ps.Partial, live, c.perPage)
		}
		sp := &slabPage{
			page:    page,
			used:    append([]uint64(nil), ps.Used...),
			live:    live,
			listIdx: -1,
		}
		if ps.Partial {
			c.addPartial(sp)
		}
		c.restoreIdx[ps.PFN] = sp
	}
	c.Objects = st.Objects
	c.PagesHeld = st.PagesHeld
	c.PagesGrown = st.PagesGrown
	c.PagesFreed = st.PagesFreed
	c.AllocCalls = st.AllocCalls
	c.FreeCalls = st.FreeCalls
	return nil
}

// ObjAt rehydrates an object handle from its serialized (page PFN,
// slot) coordinates. Valid only between ImportState and EndRestore.
func (c *Cache) ObjAt(pfn uint64, slot int) (Obj, error) {
	sp := c.restoreIdx[pfn]
	if sp == nil {
		return Obj{}, fmt.Errorf("slab: ObjAt %s: no restored page at pfn %d", c.name, pfn)
	}
	if slot < 0 || slot >= c.perPage || sp.used[slot/64]&(1<<uint(slot%64)) == 0 {
		return Obj{}, fmt.Errorf("slab: ObjAt %s pfn %d: slot %d not live", c.name, pfn, slot)
	}
	return Obj{sp: sp, slot: slot}, nil
}

// PageOf exposes an object's backing page head PFN and slot, the
// serialized coordinates ObjAt reverses.
func (o Obj) PageOf() (pfn uint64, slot int) {
	return o.sp.page.PFN, o.slot
}

// EndRestore drops the transient PFN index built by ImportState.
func (c *Cache) EndRestore() { c.restoreIdx = nil }
