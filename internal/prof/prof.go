// Package prof wires the standard runtime/pprof outputs into the CLIs,
// so hot-path regressions in the simulators can be diagnosed with
// `go tool pprof` without editing the commands.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start enables profiling for a CLI run: a CPU profile streamed to
// cpuPath for the duration, and a heap profile written to memPath when
// the returned stop function runs. Either path may be empty to disable
// that profile. The caller must call stop (normally via defer) before
// exiting for the files to be complete.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
			}
		}
	}, nil
}
