package fleet

import (
	"context"
	"errors"
	"os"
	"reflect"
	"sync"
	"testing"

	"contiguitas/internal/resultcache"
	"contiguitas/internal/telemetry"
)

// runCached executes one supervised campaign over cfg with the given
// cache and fails the test on any setup error or incomplete report.
func runCached(t *testing.T, cfg Config, cache resultcache.Cache) *CampaignResult {
	t.Helper()
	res, err := RunSupervised(context.Background(), SupervisedConfig{Fleet: cfg, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Complete {
		t.Fatalf("campaign incomplete: %s", res.Report)
	}
	return res
}

// TestCacheWarmRunIdentical: a warm run hits on every shard and its
// merged study is identical to both the cold run and an uncached run.
func TestCacheWarmRunIdentical(t *testing.T) {
	cfg := tinyConfig()
	cache := resultcache.NewDir(t.TempDir(), CacheSchemaVersion)

	uncached := Run(cfg)
	cold := runCached(t, cfg, cache)
	if cold.CacheHits != 0 || cold.CacheMisses != uint64(cfg.Shards) || cold.CacheRejects != 0 {
		t.Fatalf("cold tallies hits=%d misses=%d rejects=%d, want 0/%d/0",
			cold.CacheHits, cold.CacheMisses, cold.CacheRejects, cfg.Shards)
	}
	warm := runCached(t, cfg, cache)
	if warm.CacheHits != uint64(cfg.Shards) || warm.CacheMisses != 0 || warm.CacheRejects != 0 {
		t.Fatalf("warm tallies hits=%d misses=%d rejects=%d, want %d/0/0",
			warm.CacheHits, warm.CacheMisses, warm.CacheRejects, cfg.Shards)
	}
	if !reflect.DeepEqual(cold.Study.Samples, warm.Study.Samples) {
		t.Fatal("warm study differs from cold study")
	}
	if !reflect.DeepEqual(uncached.Samples, warm.Study.Samples) {
		t.Fatal("warm study differs from uncached study")
	}
}

// TestCacheDistinctConfigsDistinctKeys: changing any result-relevant
// Config field changes every shard key; changing a supervision knob
// changes none.
func TestCacheDistinctConfigsDistinctKeys(t *testing.T) {
	base := tinyConfig()
	variants := []func(*Config){
		func(c *Config) { c.Seed++ },
		func(c *Config) { c.MemBytes *= 2 },
		func(c *Config) { c.TicksMax++ },
		func(c *Config) { c.JitterFrac += 0.01 },
	}
	for vi, mutate := range variants {
		cfg := base
		mutate(&cfg)
		for shard := 0; shard < base.Shards; shard++ {
			if ShardCacheKey(cfg, shard) == ShardCacheKey(base, shard) {
				t.Fatalf("variant %d shard %d: key unchanged by result-relevant field", vi, shard)
			}
		}
	}
	// Shard identity separates keys within one config.
	seen := make(map[uint64]int)
	for shard := 0; shard < base.Shards; shard++ {
		k := ShardCacheKey(base, shard)
		if prev, dup := seen[k]; dup {
			t.Fatalf("shards %d and %d share key %016x", prev, shard, k)
		}
		seen[k] = shard
	}
}

// TestCacheCorruptEntryRecomputed: a tampered entry is rejected
// (counted, never trusted), the shard recomputes, the campaign stays
// correct, and the recompute heals the entry in place.
func TestCacheCorruptEntryRecomputed(t *testing.T) {
	cfg := tinyConfig()
	dir := t.TempDir()
	cache := resultcache.NewDir(dir, CacheSchemaVersion)
	want := runCached(t, cfg, cache).Study.Samples

	path := cache.EntryPath(ShardCacheKey(cfg, 1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	res := runCached(t, cfg, cache)
	if res.CacheRejects < 1 {
		t.Fatalf("rejects = %d, want >= 1", res.CacheRejects)
	}
	if res.CacheHits != uint64(cfg.Shards-1) {
		t.Fatalf("hits = %d, want %d (every untouched shard)", res.CacheHits, cfg.Shards-1)
	}
	if !reflect.DeepEqual(res.Study.Samples, want) {
		t.Fatal("study changed after cache corruption")
	}
	// Healed: the next run hits on every shard, including the tampered one.
	if res := runCached(t, cfg, cache); res.CacheHits != uint64(cfg.Shards) {
		t.Fatalf("post-heal hits = %d, want %d", res.CacheHits, cfg.Shards)
	}
}

// TestCacheStaleSchemaRecomputed: entries written under an older cache
// schema are rejected wholesale and rewritten under the current one.
func TestCacheStaleSchemaRecomputed(t *testing.T) {
	cfg := tinyConfig()
	dir := t.TempDir()
	old := resultcache.NewDir(dir, CacheSchemaVersion)
	want := runCached(t, cfg, old).Study.Samples

	cur := resultcache.NewDir(dir, CacheSchemaVersion+1)
	res := runCached(t, cfg, cur)
	if res.CacheRejects != uint64(cfg.Shards) || res.CacheHits != 0 {
		t.Fatalf("stale run hits=%d rejects=%d, want 0/%d", res.CacheHits, res.CacheRejects, cfg.Shards)
	}
	if !reflect.DeepEqual(res.Study.Samples, want) {
		t.Fatal("study changed across schema bump (generative model did not change)")
	}
	if res := runCached(t, cfg, cur); res.CacheHits != uint64(cfg.Shards) {
		t.Fatalf("post-rewrite hits = %d, want %d", res.CacheHits, cfg.Shards)
	}
}

// TestCacheLRUBackendAndMetrics: the in-memory backend behaves like the
// disk backend for in-process sweeps, and the campaign folds its tallies
// into the cache_hits/cache_misses/cache_rejects registry counters.
func TestCacheLRUBackendAndMetrics(t *testing.T) {
	cfg := tinyConfig()
	cache := resultcache.NewLRU(64, CacheSchemaVersion)
	reg := telemetry.NewRegistry()
	run := func() *CampaignResult {
		res, err := RunSupervised(context.Background(), SupervisedConfig{Fleet: cfg, Cache: cache, Metrics: reg})
		if err != nil || !res.Report.Complete {
			t.Fatalf("run: %v, %v", err, res)
		}
		return res
	}
	cold, warm := run(), run()
	if !reflect.DeepEqual(cold.Study.Samples, warm.Study.Samples) {
		t.Fatal("LRU warm study differs from cold")
	}
	if warm.CacheHits != uint64(cfg.Shards) {
		t.Fatalf("LRU warm hits = %d, want %d", warm.CacheHits, cfg.Shards)
	}
	if got := reg.Counter("cache_hits").Value(); got != warm.CacheHits {
		t.Fatalf("cache_hits counter = %d, want %d", got, warm.CacheHits)
	}
	if got := reg.Counter("cache_misses").Value(); got != cold.CacheMisses {
		t.Fatalf("cache_misses counter = %d, want %d", got, cold.CacheMisses)
	}
	if got := reg.Counter("cache_rejects").Value(); got != 0 {
		t.Fatalf("cache_rejects counter = %d, want 0", got)
	}
}

// TestCacheTracepoints: cold runs trace cache-miss, warm runs cache-hit,
// all on the cache track, emitted from the supervisor goroutine.
func TestCacheTracepoints(t *testing.T) {
	cfg := tinyConfig()
	cache := resultcache.NewLRU(64, CacheSchemaVersion)
	countEvents := func(ring *telemetry.Ring, id telemetry.EventID) int {
		n := 0
		for _, rec := range ring.Snapshot(nil) {
			if rec.ID == id {
				n++
			}
		}
		return n
	}
	cold := telemetry.NewRing(1 << 10)
	if _, err := RunSupervised(context.Background(), SupervisedConfig{Fleet: cfg, Cache: cache, Trace: cold}); err != nil {
		t.Fatal(err)
	}
	if got := countEvents(cold, telemetry.EvCacheMiss); got != cfg.Shards {
		t.Fatalf("cold run traced %d cache-miss events, want %d", got, cfg.Shards)
	}
	warm := telemetry.NewRing(1 << 10)
	if _, err := RunSupervised(context.Background(), SupervisedConfig{Fleet: cfg, Cache: cache, Trace: warm}); err != nil {
		t.Fatal(err)
	}
	if got := countEvents(warm, telemetry.EvCacheHit); got != cfg.Shards {
		t.Fatalf("warm run traced %d cache-hit events, want %d", got, cfg.Shards)
	}
	if got := countEvents(warm, telemetry.EvCacheMiss); got != 0 {
		t.Fatalf("warm run traced %d cache-miss events, want 0", got)
	}
}

// TestCacheConcurrentCampaigns: many campaigns over the same
// configuration share one cache and one process-wide singleflight; all
// must complete with identical samples and no deadlock. (Exact Put
// counts are timing-dependent; correctness is not.)
func TestCacheConcurrentCampaigns(t *testing.T) {
	cfg := tinyConfig()
	cache := resultcache.NewLRU(64, CacheSchemaVersion)
	want := Run(cfg).Samples
	const campaigns = 6
	results := make([][]Sample, campaigns)
	var wg sync.WaitGroup
	for i := 0; i < campaigns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := RunSupervised(context.Background(), SupervisedConfig{Fleet: cfg, Cache: cache})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res.Study.Samples
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("campaign %d samples differ from uncached reference", i)
		}
	}
}

// TestCacheWithCheckpointResume: a durable, fault-injected campaign and
// the cache coexist — the resumed-to-completion shards still produce the
// canonical study, and a following cached run hits everywhere.
func TestCacheWithCheckpointResume(t *testing.T) {
	cfg := tinyConfig()
	cache := resultcache.NewDir(t.TempDir(), CacheSchemaVersion)
	want := Run(cfg).Samples
	res, err := RunSupervised(context.Background(), SupervisedConfig{
		Fleet: cfg,
		Dir:   t.TempDir(),
		Cache: cache,
		// 3 servers per shard: the third crossing kills each shard once,
		// after its last server but before the final checkpoint.
		Faults: FaultPlan{CrashEveryN: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Complete {
		t.Fatalf("faulted campaign incomplete: %s", res.Report)
	}
	if res.KillsInjected == 0 {
		t.Fatal("fault plan never fired; test is vacuous")
	}
	if !reflect.DeepEqual(res.Study.Samples, want) {
		t.Fatal("faulted cached campaign diverged from canonical study")
	}
	warm := runCached(t, cfg, cache)
	if warm.CacheHits != uint64(cfg.Shards) {
		t.Fatalf("warm-after-faults hits = %d, want %d", warm.CacheHits, cfg.Shards)
	}
	if !reflect.DeepEqual(warm.Study.Samples, want) {
		t.Fatal("warm-after-faults study diverged")
	}
}

// TestRunSupervisedPreCancelledContext: a context cancelled before the
// campaign starts is a reported setup error, not an empty degraded
// result (and therefore never fleet.Run's assertion panic).
func TestRunSupervisedPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunSupervised(ctx, SupervisedConfig{Fleet: tinyConfig()})
	if err == nil {
		t.Fatalf("pre-cancelled campaign returned %+v, want error", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(context.Canceled)", err)
	}
}
