package fleet

import (
	"math"
	"sync"
	"testing"

	"contiguitas/internal/core"
	"contiguitas/internal/mem"
	"contiguitas/internal/workload"
)

// smallStudy runs a reduced fleet for test speed; thresholds below are
// set for this scale and validated against the paper's qualitative
// claims (exact percentages are reproduced by cmd/fleetscan at full
// scale and recorded in EXPERIMENTS.md). Studies are deterministic, so
// one run per design is shared across tests.
func smallStudy(t *testing.T, design core.Design) *Study {
	t.Helper()
	studyMu.Lock()
	defer studyMu.Unlock()
	if s, ok := studyCache[design]; ok {
		return s
	}
	cfg := DefaultConfig()
	cfg.Servers = 18
	cfg.MemBytes = 512 << 20
	cfg.TicksMin = 60
	cfg.TicksMax = 200
	cfg.Design = design
	s := Run(cfg)
	studyCache[design] = s
	return s
}

var (
	studyMu    sync.Mutex
	studyCache = map[core.Design]*Study{}
)

func TestFleetLinuxScatterAndSources(t *testing.T) {
	s := smallStudy(t, core.DesignLinux)
	if len(s.Samples) != 18 {
		t.Fatalf("samples = %d", len(s.Samples))
	}
	// §2.5: a small unmovable frame fraction spoils a multiple of that
	// fraction of 2MB blocks.
	frames := s.MedianUnmovFrameFrac()
	blocks := s.MedianUnmovBlockFrac(mem.Order2M)
	if frames <= 0 || blocks <= 0 {
		t.Fatal("degenerate medians")
	}
	if blocks < 1.5*frames {
		t.Fatalf("no scatter amplification: frames=%.3f blocks=%.3f", frames, blocks)
	}
	// Figure 6: networking dominates unmovable sources.
	src := s.SourceBreakdown()
	if src[mem.SrcNetworking] < 0.5 {
		t.Fatalf("networking share = %.2f, want dominant (paper: 0.73)", src[mem.SrcNetworking])
	}
	if src[mem.SrcSlab] <= src[mem.SrcPageTable] {
		t.Fatal("slab must outweigh page tables (Figure 6 ordering)")
	}
	var total float64
	for _, v := range src {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("breakdown sums to %v", total)
	}
}

func TestFleetContiguityCDFOrdering(t *testing.T) {
	s := smallStudy(t, core.DesignLinux)
	// Figure 4: contiguity at larger orders is scarcer — the CDF at any
	// x is at least as high for bigger blocks.
	c2 := s.ContigCDF(mem.Order2M)
	c32 := s.ContigCDF(mem.Order32M)
	c1g := s.ContigCDF(mem.Order1G)
	for _, x := range []float64{0, 0.05, 0.1, 0.2, 0.5} {
		if c32.At(x) < c2.At(x)-1e-9 || c1g.At(x) < c32.At(x)-1e-9 {
			t.Fatalf("CDF ordering broken at x=%v: 2M=%.2f 32M=%.2f 1G=%.2f",
				x, c2.At(x), c32.At(x), c1g.At(x))
		}
	}
	// 1GB contiguity is practically nonexistent (paper: dynamically
	// allocating 1GB pages is practically impossible).
	if s.NoContigFraction(mem.Order1G) < 0.9 {
		t.Fatalf("1GB-free fraction = %v, want ~all servers lacking it",
			s.NoContigFraction(mem.Order1G))
	}
	// A fully-fragmented tail exists at 2MB (paper: 23%).
	if s.NoContigFraction(mem.Order2M) == 0 {
		t.Log("note: no fully-fragmented server in this small sample; full-scale runs reproduce the tail")
	}
}

func TestFleetUnmovableCDFOrdering(t *testing.T) {
	s := smallStudy(t, core.DesignLinux)
	// Figure 5: the bigger the block, the more likely it contains
	// unmovable memory, so the CDF shifts right with order. Compare
	// medians.
	m2 := s.MedianUnmovBlockFrac(mem.Order2M)
	m32 := s.MedianUnmovBlockFrac(mem.Order32M)
	if m2 > m32+1e-9 {
		t.Fatalf("unmovable medians not monotone: 2M=%.3f 32M=%.3f", m2, m32)
	}
	// The 1 GB level needs machines of at least 1 GB; these test
	// machines are 512 MB, so the 1 GB row is exercised at full scale
	// by cmd/fleetscan instead.
	if m32 < 2*m2 && m32 < 0.9 {
		t.Logf("note: 32M amplification modest at this scale (2M=%.3f 32M=%.3f)", m2, m32)
	}
}

func TestFleetUptimeCorrelationNearZero(t *testing.T) {
	s := smallStudy(t, core.DesignLinux)
	// §2.4: Pearson r between uptime and free 2MB blocks ≈ 0.003. At
	// our sample size anything small passes; a strong correlation would
	// falsify the reproduction.
	if r := s.UptimeCorrelation(); math.Abs(r) > 0.5 {
		t.Fatalf("uptime correlation = %v, want near zero", r)
	}
}

func TestFleetContiguitasConfines(t *testing.T) {
	lin := smallStudy(t, core.DesignLinux)
	con := smallStudy(t, core.DesignContiguitas)
	ml := lin.MedianUnmovBlockFrac(mem.Order2M)
	mc := con.MedianUnmovBlockFrac(mem.Order2M)
	if mc >= ml {
		t.Fatalf("Contiguitas median %v not below Linux %v", mc, ml)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Servers <= 0 || cfg.MemBytes == 0 || cfg.TicksMax < cfg.TicksMin {
		t.Fatalf("bad default config: %+v", cfg)
	}
}

func TestYoungServerSeriesFragmentsEarly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemBytes = 512 << 20
	pts := YoungServerSeries(cfg, workload.CacheA(), 4, 25)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Unmovable blocks appear quickly and the machine carries unmovable
	// residue from its first scan onward.
	if pts[0].UnmovBlock2M <= 0 {
		t.Fatal("no unmovable blocks after the first interval")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Tick <= pts[i-1].Tick {
			t.Fatal("ticks must grow")
		}
	}
}
