package fleet

import (
	"fmt"
	"testing"

	"contiguitas/internal/core"
	"contiguitas/internal/mem"
	"contiguitas/internal/workload"
)

func TestDebugPackedServer(t *testing.T) {
	p := workload.CacheA()
	p.UserFrac = 0.97 - p.PageCacheFrac - p.UnmovableFrac
	mc := core.DefaultMachineConfig(core.DesignLinux)
	mc.MemBytes = 1 << 30
	m := core.NewMachine(mc)
	r := m.Attach(p, 3)
	for i := 0; i < 6; i++ {
		r.Run(50)
		st := m.K.PM().Scan([]int{mem.Order2M})
		fmt.Printf("t=%d free=%.1f%% contig2M=%.3f unmovBlk=%.3f thp=%.2f deferred=%d compOK=%d fails=%d\n",
			(i+1)*50, 100*float64(st.FreePages)/float64(m.K.PM().NPages),
			st.FreeContigFraction(mem.Order2M), st.UnmovableBlockFraction(mem.Order2M),
			r.THPCoverage(), m.K.CompactDeferred, m.K.CompactSuccess, m.K.AllocFail)
	}
}
