// Package fleet reproduces the paper's §2.4-2.5 fleet study: thousands
// of servers are sampled, each running a randomized workload mix for a
// randomized uptime, and a full physical-memory scan is taken — yielding
// the contiguity CDFs (Figure 4), the unmovable-block CDFs (Figure 5),
// the unmovable-source breakdown (Figure 6), and the uptime-versus-
// contiguity correlation the paper finds to be essentially zero.
//
// The study executes as a set of deterministic shards under the
// internal/supervise engine (see shard.go): each shard draws its server
// plans from its own stats.ShardSeed-derived RNG stream and merges its
// samples into a canonical slot, so the study result is a pure function
// of Config — independent of worker count, scheduling, injected shard
// kills, and checkpoint/resume.
package fleet

import (
	"context"

	"contiguitas/internal/core"
	"contiguitas/internal/mem"
	"contiguitas/internal/stats"
	"contiguitas/internal/workload"
)

// Config parameterises the study.
type Config struct {
	Servers  int
	MemBytes uint64
	Design   core.Design
	// TicksMin/Max bound the uniformly-drawn uptime of each server.
	TicksMin, TicksMax uint64
	// JitterFrac randomises each server's unmovable and churn levels
	// around the profile baseline (fleet heterogeneity).
	JitterFrac float64
	Seed       uint64
	// Shards partitions the fleet into supervised execution shards
	// (0 picks DefaultShards(Servers)). The partition and every shard's
	// RNG stream are pure functions of the config, so the shard count
	// changes scheduling granularity and restart blast radius — never
	// results for a fixed value.
	Shards int
}

// DefaultConfig returns a study sized for interactive runs; cmd/fleetscan
// scales it up.
func DefaultConfig() Config {
	return Config{
		Servers:    120,
		MemBytes:   1 << 30,
		Design:     core.DesignLinux,
		TicksMin:   60,
		TicksMax:   500,
		JitterFrac: 0.5,
		Seed:       1,
	}
}

// Sample is one scanned server.
type Sample struct {
	Profile string
	Uptime  uint64

	FreePages       uint64
	FreeContigFrac  map[int]float64
	UnmovBlockFrac  map[int]float64
	UnmovFrameFrac  float64
	Free2MBlocks    uint64
	SourceBreakdown [mem.NumSources]uint64
}

// Study aggregates the fleet scan.
type Study struct {
	Cfg     Config
	Samples []Sample

	// Lazily-built per-order CDF caches: the CLI evaluates the same CDF
	// at many x values in nested loops, and rebuilding (copy + sort) per
	// call dominated study post-processing.
	contigCDF map[int]*stats.CDF
	unmovCDF  map[int]*stats.CDF
}

// serverPlan is one server's pre-drawn randomization, fixed before the
// parallel phase so results are independent of scheduling.
type serverPlan struct {
	profile     workload.Profile
	machineSeed uint64
	runnerSeed  uint64
	uptime      uint64
}

// drawPlans draws n server plans from rng — the generative model of the
// fleet's heterogeneity. Each shard calls this against its own RNG
// stream, so a shard's plans depend only on (config, shard index).
func drawPlans(cfg Config, rng *stats.RNG, n int) []serverPlan {
	profiles := workload.Profiles()
	plans := make([]serverPlan, n)
	for s := range plans {
		p := profiles[rng.Intn(len(profiles))]
		jitter := func(x float64) float64 {
			return x * (1 + cfg.JitterFrac*(2*rng.Float64()-1))
		}
		// Unmovable footprints are heavy-tailed across a real fleet
		// (Figure 5 reaches 80-100 % of 2 MB blocks on the worst
		// servers): draw a log-normal multiplier.
		unmovScale := rng.LogNormal(0.15, 0.55)
		if unmovScale > 3.5 {
			unmovScale = 3.5
		}
		p.UnmovableFrac = clamp01(p.UnmovableFrac * unmovScale)
		p.UnmovableChurn = clamp01(jitter(p.UnmovableChurn))
		p.SmallChurn = clamp01(jitter(p.SmallChurn))
		p.UserChurn = clamp01(jitter(p.UserChurn))
		// Memory-utilization heterogeneity: production services are
		// packed to fit their machines, and a tail of servers runs hard
		// against capacity — where THP faults fail, user memory decays
		// to base pages, and free memory becomes scattered holes. That
		// tail is the fully-fragmented 23 % of Figure 4.
		if headroom := 0.97 - p.UserFrac - p.PageCacheFrac - p.UnmovableFrac; headroom > 0 {
			p.UserFrac += headroom * rng.Float64()
		}
		plans[s] = serverPlan{
			profile:     p,
			machineSeed: rng.Uint64(),
			runnerSeed:  rng.Uint64(),
			uptime:      cfg.TicksMin + uint64(rng.Int63n(int64(cfg.TicksMax-cfg.TicksMin+1))),
		}
	}
	return plans
}

// Run executes the study through the supervised sharded engine with no
// faults armed and no durable state. With nothing to crash a shard the
// campaign cannot fail, so Run keeps the historical infallible
// signature; use RunSupervised directly for checkpointing, fault
// injection, cancellation, and resume. The panics below are true
// assertions: every real failure path reports through RunSupervised's
// error (bad configuration, pre-cancelled context, resume problems) and
// none of those can arise from a fresh Background-context campaign over
// a validated Config.
func Run(cfg Config) *Study {
	res, err := RunSupervised(context.Background(), SupervisedConfig{Fleet: cfg})
	if err != nil {
		panic("fleet: unfaulted in-memory study failed: " + err.Error())
	}
	if !res.Report.Complete {
		panic("fleet: unfaulted in-memory study incomplete: " + res.Report.String())
	}
	return res.Study
}

// runServer simulates one server to its uptime and scans it into the
// caller-owned scratch stats (reused across the worker's servers).
func runServer(cfg Config, plan serverPlan, st *mem.ContiguityStats) Sample {
	mc := core.DefaultMachineConfig(cfg.Design)
	mc.MemBytes = cfg.MemBytes
	mc.Seed = plan.machineSeed
	m := core.NewMachine(mc)
	r := m.Attach(plan.profile, plan.runnerSeed)
	r.Run(plan.uptime)

	m.K.PM().ScanInto(st, mem.ScanOrders)
	smp := Sample{
		Profile:        plan.profile.Name,
		Uptime:         plan.uptime,
		FreePages:      st.FreePages,
		FreeContigFrac: map[int]float64{},
		UnmovBlockFrac: map[int]float64{},
		UnmovFrameFrac: st.UnmovableFrameFraction(),
		Free2MBlocks:   st.FreeContigPages[mem.Order2M] / mem.PageblockPages,
	}
	for _, o := range mem.ScanOrders {
		smp.FreeContigFrac[o] = st.FreeContigFraction(o)
		smp.UnmovBlockFrac[o] = st.UnmovableBlockFraction(o)
	}
	for i := range smp.SourceBreakdown {
		smp.SourceBreakdown[i] = st.UnmovableBySource[i]
	}
	return smp
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// ContigCDF is Figure 4: the distribution across servers of free-memory
// contiguity at the given block order, as a fraction of free memory.
// The CDF is built once per order and cached; Samples are immutable
// after Run.
func (s *Study) ContigCDF(order int) *stats.CDF {
	if c, ok := s.contigCDF[order]; ok {
		return c
	}
	vals := make([]float64, 0, len(s.Samples))
	for _, smp := range s.Samples {
		vals = append(vals, smp.FreeContigFrac[order])
	}
	c := stats.NewCDFInPlace(vals)
	if s.contigCDF == nil {
		s.contigCDF = make(map[int]*stats.CDF)
	}
	s.contigCDF[order] = c
	return c
}

// UnmovCDF is Figure 5: the distribution of the fraction of blocks at
// the given order containing unmovable memory. Cached per order like
// ContigCDF.
func (s *Study) UnmovCDF(order int) *stats.CDF {
	if c, ok := s.unmovCDF[order]; ok {
		return c
	}
	vals := make([]float64, 0, len(s.Samples))
	for _, smp := range s.Samples {
		vals = append(vals, smp.UnmovBlockFrac[order])
	}
	c := stats.NewCDFInPlace(vals)
	if s.unmovCDF == nil {
		s.unmovCDF = make(map[int]*stats.CDF)
	}
	s.unmovCDF[order] = c
	return c
}

// NoContigFraction returns the fraction of servers without a single
// free block of the order (the paper: 23 % of servers lack even one
// 2 MB block).
func (s *Study) NoContigFraction(order int) float64 {
	n := 0
	for _, smp := range s.Samples {
		if smp.FreeContigFrac[order] == 0 {
			n++
		}
	}
	return float64(n) / float64(len(s.Samples))
}

// SourceBreakdown is Figure 6: the fleet-aggregate shares of unmovable
// memory by allocation source.
func (s *Study) SourceBreakdown() [mem.NumSources]float64 {
	var totals [mem.NumSources]uint64
	var all uint64
	for _, smp := range s.Samples {
		for i, v := range smp.SourceBreakdown {
			totals[i] += v
			all += v
		}
	}
	var out [mem.NumSources]float64
	if all == 0 {
		return out
	}
	for i, v := range totals {
		out[i] = float64(v) / float64(all)
	}
	return out
}

// UptimeCorrelation returns Pearson's r between server uptime and the
// number of free 2 MB blocks — ~0.003 in the paper's fleet.
func (s *Study) UptimeCorrelation() float64 {
	xs := make([]float64, len(s.Samples))
	ys := make([]float64, len(s.Samples))
	for i, smp := range s.Samples {
		xs[i] = float64(smp.Uptime)
		ys[i] = float64(smp.Free2MBlocks)
	}
	return stats.Pearson(xs, ys)
}

// MedianUnmovBlockFrac returns the fleet median of the unmovable-block
// fraction at an order (§2.5: 34 % at 2 MB on Linux).
func (s *Study) MedianUnmovBlockFrac(order int) float64 {
	vals := make([]float64, 0, len(s.Samples))
	for _, smp := range s.Samples {
		vals = append(vals, smp.UnmovBlockFrac[order])
	}
	return stats.Percentile(vals, 50)
}

// TimePoint is one instant of a young server's fragmentation history.
type TimePoint struct {
	Tick           uint64
	FreeContig2M   float64
	UnmovBlock2M   float64
	UnmovFrameFrac float64
}

// YoungServerSeries reproduces the paper's §2.4 observation that
// servers become highly fragmented within their first hour: one server
// is booted fresh and scanned every interval ticks.
func YoungServerSeries(cfg Config, p workload.Profile, points int, interval uint64) []TimePoint {
	mc := core.DefaultMachineConfig(cfg.Design)
	mc.MemBytes = cfg.MemBytes
	mc.Seed = cfg.Seed
	m := core.NewMachine(mc)
	r := m.Attach(p, cfg.Seed+1)
	var out []TimePoint
	for i := 0; i < points; i++ {
		r.Run(interval)
		st := m.K.PM().Scan([]int{mem.Order2M})
		out = append(out, TimePoint{
			Tick:           uint64(i+1) * interval,
			FreeContig2M:   st.FreeContigFraction(mem.Order2M),
			UnmovBlock2M:   st.UnmovableBlockFraction(mem.Order2M),
			UnmovFrameFrac: st.UnmovableFrameFraction(),
		})
	}
	return out
}

// MedianUnmovFrameFrac returns the fleet median unmovable 4 KB frame
// fraction (§2.5: 7.6 %).
func (s *Study) MedianUnmovFrameFrac() float64 {
	vals := make([]float64, 0, len(s.Samples))
	for _, smp := range s.Samples {
		vals = append(vals, smp.UnmovFrameFrac)
	}
	return stats.Percentile(vals, 50)
}
