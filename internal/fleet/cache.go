// Result-cache wiring: the campaign layer's use of the content-addressed
// shard cache (internal/resultcache).
//
// A shard's samples are a pure function of its input closure — the
// result-relevant Config fields, the stats.ShardSeed-derived RNG stream,
// and the shard span — so a cache entry keyed on the canonical digest of
// that closure can replace the shard's entire simulation. Lookup happens
// at shard open (a hit finishes the shard before its first Step),
// population at shard completion, and every rejection (corrupt, torn,
// swapped, or stale-schema entry) is counted and transparently
// recomputed; the recompute's Put overwrites the bad entry in place.
//
// Cache-key granularity equals shard granularity: two campaigns reuse
// each other's work only where their shard partitions agree, so sweeps
// that want maximal reuse should pin Config.Shards (finer shards → more,
// smaller units of reuse; see DefaultShards).
package fleet

import (
	"bytes"
	"encoding/gob"
	"errors"
	"hash/fnv"
	"math"
	"time"

	"contiguitas/internal/resultcache"
	"contiguitas/internal/stats"
)

// CacheSchemaVersion versions the generative model behind shard samples:
// drawPlans' draw sequence, runServer's simulation semantics, and the
// Sample field set. Bump it whenever any of those change meaning, so
// entries written by older simulators are rejected (ErrStaleSchema) and
// recomputed instead of silently trusted. The version is deliberately
// NOT folded into the cache key: inside the key it would merely orphan
// old entries as misses, while in the envelope it makes staleness a
// detected, counted rejection.
const CacheSchemaVersion = 1

// defaultCacheWait bounds a singleflight follower's wait for the
// leader's Put. The flight is an optimization, never a correctness
// gate: a follower that outwaits a wedged leader simulates the shard
// itself.
const defaultCacheWait = 10 * time.Second

// shardFlight dedups concurrent identical-key shard computations across
// every campaign in the process, so two sweeps racing over the same grid
// simulate each configuration once. Leadership is owned per campaign and
// released at the latest when its RunSupervised returns.
var shardFlight = resultcache.NewFlight()

// resolveShards returns the effective shard count for cfg: Config.Shards
// when positive, the DefaultShards partition otherwise, never more than
// one shard per server.
func resolveShards(cfg Config) int {
	shards := cfg.Shards
	if shards <= 0 {
		shards = DefaultShards(cfg.Servers)
	}
	if shards > cfg.Servers {
		shards = cfg.Servers
	}
	return shards
}

// ShardCacheKey digests shard's full input closure under cfg: every
// Config field the samples depend on, the shard's RNG stream seed
// (stats.ShardSeed — covering Seed and the shard index), and the shard's
// span in the fleet. Configs that differ only in supervision knobs
// (workers, backoff, checkpoint cadence, fault plans) map to the same
// key, because they cannot change a single sample byte.
func ShardCacheKey(cfg Config, shard int) uint64 {
	sp := splitSpans(cfg.Servers, resolveShards(cfg))[shard]
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range []uint64{
		cfg.MemBytes, uint64(cfg.Design), cfg.TicksMin, cfg.TicksMax,
		math.Float64bits(cfg.JitterFrac),
		stats.ShardSeed(cfg.Seed, shard),
		sp.lo, sp.n,
	} {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// cacheOutcome is a shard's final cache verdict, reported as an
// EvCacheHit/EvCacheMiss tracepoint when the shard completes.
type cacheOutcome uint8

const (
	cacheNone cacheOutcome = iota
	cacheHit
	cacheMiss
)

// Tracepoint reason codes for EvCacheReject.
const (
	cacheRejectCorrupt = 0
	cacheRejectSchema  = 1
)

// tryCache serves sr wholly from the result cache when a trustworthy
// entry exists, returning true iff the shard is complete. On a miss it
// takes (or briefly waits on) the key's singleflight leadership and arms
// sr to populate the cache at completion.
func (c *campaign) tryCache(sr *shardRun) bool {
	key := c.cacheKeys[sr.shard]
	if c.loadCached(sr, key, true) {
		return true
	}
	// Miss or rejected entry: elect one computation per key across the
	// process. A follower waits bounded and then computes anyway —
	// duplicate work beats any chance of cross-campaign deadlock — and a
	// crashed leader's retry re-joins as leader (ownership is the
	// campaign, not the attempt).
	if leader, wait := shardFlight.Join(key, c); !leader {
		if wait(c.cacheWait) && c.loadCached(sr, key, false) {
			return true
		}
	}
	sr.cacheKey, sr.cachePut = key, true
	return false
}

// loadCached attempts one cache read into sr. count selects whether the
// campaign tallies move: the post-singleflight re-read is an internal
// detail (the shard's outcome stays "miss"; the flight merely saved the
// duplicate work), so only the first read per open counts.
func (c *campaign) loadCached(sr *shardRun, key uint64, count bool) bool {
	payload, err := c.cache.Get(key)
	if err == nil {
		var got []Sample
		if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&got); derr != nil || uint64(len(got)) != sr.units {
			// The envelope verified but the payload is not a shard of the
			// expected shape — still a lie, still recomputed.
			if count {
				c.noteCacheReject(sr.shard, cacheRejectCorrupt)
			}
			return false
		}
		copy(sr.samples, got)
		sr.done = sr.units
		sr.fromCache = true
		if count {
			c.noteCacheOutcome(sr.shard, cacheHit)
		}
		return true
	}
	if !count {
		return false
	}
	switch {
	case errors.Is(err, resultcache.ErrStaleSchema):
		c.noteCacheReject(sr.shard, cacheRejectSchema)
	case resultcache.IsReject(err):
		c.noteCacheReject(sr.shard, cacheRejectCorrupt)
	case errors.Is(err, resultcache.ErrMiss):
		c.noteCacheOutcome(sr.shard, cacheMiss)
	default:
		// Operational error (unreadable cache directory): the cache is
		// best-effort, so degrade to a miss rather than failing the shard.
		c.noteCacheOutcome(sr.shard, cacheMiss)
	}
	return false
}

// noteCacheOutcome records a shard's hit/miss and moves the campaign
// tallies. Called from worker goroutines, hence the lock.
func (c *campaign) noteCacheOutcome(shard int, o cacheOutcome) {
	c.mu.Lock()
	c.cacheState[shard] = o
	switch o {
	case cacheHit:
		c.cacheHits++
	case cacheMiss:
		c.cacheMisses++
	}
	hits, misses, rejects := c.cacheHits, c.cacheMisses, c.cacheRejects
	c.mu.Unlock()
	if p := c.cfg.Progress; p != nil {
		p.ObserveCache(hits, misses, rejects)
	}
}

// noteCacheReject records a refused entry: the rejection is tallied on
// its own counter (never as a miss) and the shard proceeds to recompute.
func (c *campaign) noteCacheReject(shard int, reason uint64) {
	c.mu.Lock()
	c.cacheState[shard] = cacheMiss
	c.cacheRejected[shard] = true
	c.cacheRejectReason[shard] = reason
	c.cacheRejects++
	hits, misses, rejects := c.cacheHits, c.cacheMisses, c.cacheRejects
	c.mu.Unlock()
	if p := c.cfg.Progress; p != nil {
		p.ObserveCache(hits, misses, rejects)
	}
}

// populateCache stores a freshly computed shard and releases the key's
// singleflight followers. A failed Put degrades future runs to
// recompute, never this one — the result is already merged.
func (c *campaign) populateCache(sr *shardRun) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sr.samples[:sr.units]); err == nil {
		_ = c.cache.Put(sr.cacheKey, buf.Bytes())
	}
	shardFlight.Finish(sr.cacheKey, c)
}

// releaseFlight abandons any singleflight leadership the campaign still
// holds (crashed-then-quarantined shards, cancellation). Idempotent and
// owner-scoped, so sweeping every key is safe.
func (c *campaign) releaseFlight() {
	for _, key := range c.cacheKeys {
		shardFlight.Finish(key, c)
	}
}
