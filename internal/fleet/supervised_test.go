package fleet

import (
	"bytes"
	"context"
	"errors"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"contiguitas/internal/core"
	"contiguitas/internal/snapshot"
	"contiguitas/internal/supervise"
)

// tinyConfig is sized for supervision tests: enough servers for several
// shards, small enough that a full campaign stays under a second.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Servers = 12
	cfg.MemBytes = 64 << 20
	cfg.TicksMin = 20
	cfg.TicksMax = 60
	cfg.Design = core.DesignLinux
	cfg.Shards = 4
	return cfg
}

func TestDefaultShardsAndSpans(t *testing.T) {
	for _, tc := range []struct{ servers, want int }{
		{0, 1}, {1, 1}, {16, 1}, {17, 2}, {120, 8}, {100000, 16},
	} {
		if got := DefaultShards(tc.servers); got != tc.want {
			t.Fatalf("DefaultShards(%d) = %d, want %d", tc.servers, got, tc.want)
		}
	}
	spans := splitSpans(10, 4)
	var total uint64
	var next uint64
	for i, sp := range spans {
		if sp.lo != next {
			t.Fatalf("span %d starts at %d, want %d (spans must tile)", i, sp.lo, next)
		}
		next += sp.n
		total += sp.n
	}
	if total != 10 {
		t.Fatalf("spans cover %d servers, want 10", total)
	}
}

// TestSupervisedIdenticalUnderKills is the in-process version of the
// fleetscan -soak gate: injected shard kills and checkpoint-write
// failures must not change a single sample of the merged study.
func TestSupervisedIdenticalUnderKills(t *testing.T) {
	cfg := tinyConfig()
	want := Run(cfg)

	res, err := RunSupervised(context.Background(), SupervisedConfig{
		Fleet:       cfg,
		MaxAttempts: 64,
		BackoffBase: time.Microsecond,
		BackoffCap:  time.Millisecond,
		Faults:      FaultPlan{CrashEveryN: 2, CheckpointFailProb: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Complete {
		t.Fatalf("faulted campaign incomplete: %s", res.Report)
	}
	if res.KillsInjected == 0 {
		t.Fatal("fault plan injected no kills — the test exercised nothing")
	}
	if res.Report.Crashes == 0 || res.Report.Resumed == 0 {
		t.Fatalf("no supervision happened: %s", res.Report)
	}
	if !reflect.DeepEqual(res.Study.Samples, want.Samples) {
		t.Fatalf("supervised samples diverged from plain Run after %d kills", res.KillsInjected)
	}
}

// TestCancellationPartialNeverComplete pins the degradation contract:
// cancelling a campaign yields a report that is never Complete, a study
// holding only finished shards, and no leaked goroutines.
func TestCancellationPartialNeverComplete(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := tinyConfig()
	cfg.Servers = 24
	cfg.Shards = 8

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel as soon as the first shard finishes: with 2 workers and 8
	// shards, most of the campaign is still pending, so the result must
	// degrade to a strict subset.
	res, err := RunSupervised(ctx, SupervisedConfig{
		Fleet:   cfg,
		Workers: 2,
		OnEvent: func(ev supervise.Event) {
			if ev.Kind == supervise.EventDone {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Complete {
		t.Fatalf("canceled campaign reported complete: %s", res.Report)
	}
	if !res.Report.Canceled {
		t.Fatalf("canceled campaign not marked canceled: %s", res.Report)
	}
	if len(res.Study.Samples) == 0 || len(res.Study.Samples) >= cfg.Servers {
		t.Fatalf("partial study has %d samples of %d, want a strict non-empty subset",
			len(res.Study.Samples), cfg.Servers)
	}
	if res.Report.Finished*3 != len(res.Study.Samples) {
		t.Fatalf("%d finished shards but %d samples (3 servers/shard)",
			res.Report.Finished, len(res.Study.Samples))
	}
	if len(res.MissingShards)+res.Report.Finished != cfg.Shards {
		t.Fatalf("missing %v + finished %d != %d shards",
			res.MissingShards, res.Report.Finished, cfg.Shards)
	}

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after cancellation: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestResumeFromDiskCompletesIdentically kills a durable campaign
// mid-flight (context timeout), then resumes it in a "new process"
// (fresh RunSupervised) and requires the final study to match an
// uninterrupted run exactly.
func TestResumeFromDiskCompletesIdentically(t *testing.T) {
	cfg := tinyConfig()
	dir := t.TempDir()

	// Kill the campaign at the first injected crash: the crashed shard is
	// mid-flight, so the on-disk state is guaranteed partial.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	first, err := RunSupervised(ctx, SupervisedConfig{
		Fleet:       cfg,
		Workers:     2,
		Dir:         dir,
		MaxAttempts: 64,
		BackoffBase: time.Microsecond,
		Faults:      FaultPlan{CrashEveryN: 2},
		OnEvent: func(ev supervise.Event) {
			if ev.Kind == supervise.EventCrash {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.Report.Complete {
		t.Fatalf("campaign canceled at first crash still completed: %s", first.Report)
	}

	res, err := RunSupervised(context.Background(), SupervisedConfig{
		Fleet:  cfg,
		Dir:    dir,
		Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Complete {
		t.Fatalf("resumed campaign incomplete: %s", res.Report)
	}
	want := Run(cfg)
	if !reflect.DeepEqual(res.Study.Samples, want.Samples) {
		t.Fatal("resumed study diverged from uninterrupted run")
	}
	for _, s := range res.Manifest.Shards {
		if s.Status != snapshot.ShardDone {
			t.Fatalf("manifest shard %d not done after resume: %+v", s.Shard, s)
		}
	}
}

// TestManifestTamperRejectedOnResume pins the typed sentinels: editing
// the manifest after its seal — a flipped chain digest, a rolled-back
// attempt count — must fail resume with ErrManifestTamper before any
// shard state is trusted.
func TestManifestTamperRejectedOnResume(t *testing.T) {
	tamper := []struct {
		name string
		edit func(m *snapshot.Manifest)
	}{
		{"flipped chain digest", func(m *snapshot.Manifest) { m.Shards[0].Chain ^= 1 }},
		{"stale attempt count", func(m *snapshot.Manifest) { m.Shards[0].Attempts = 0 }},
	}
	for _, tc := range tamper {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tinyConfig()
			dir := t.TempDir()
			if _, err := RunSupervised(context.Background(), SupervisedConfig{Fleet: cfg, Dir: dir}); err != nil {
				t.Fatal(err)
			}
			m, err := snapshot.ReadManifest(ManifestPath(dir))
			if err != nil {
				t.Fatal(err)
			}
			tc.edit(m) // after Seal: the self-digest no longer covers the edit
			if err := snapshot.WriteManifest(ManifestPath(dir), m); err != nil {
				t.Fatal(err)
			}
			_, err = RunSupervised(context.Background(), SupervisedConfig{Fleet: cfg, Dir: dir, Resume: true})
			if !errors.Is(err, snapshot.ErrManifestTamper) {
				t.Fatalf("resume returned %v, want ErrManifestTamper", err)
			}
		})
	}
}

// TestResealedTamperQuarantinesShard covers the adversary who edits the
// manifest and reseals it: the self-digest passes, but the shard
// checkpoint no longer matches the manifest record, so the shard's every
// attempt fails verification and it is quarantined — its data never
// enters the study.
func TestResealedTamperQuarantinesShard(t *testing.T) {
	cfg := tinyConfig()
	dir := t.TempDir()
	if _, err := RunSupervised(context.Background(), SupervisedConfig{Fleet: cfg, Dir: dir}); err != nil {
		t.Fatal(err)
	}
	m, err := snapshot.ReadManifest(ManifestPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	m.Shards[1].Chain ^= 0xdead
	m.Seal()
	if err := snapshot.WriteManifest(ManifestPath(dir), m); err != nil {
		t.Fatal(err)
	}
	res, err := RunSupervised(context.Background(), SupervisedConfig{
		Fleet:       cfg,
		Dir:         dir,
		Resume:      true,
		MaxAttempts: 2,
		BackoffBase: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Complete || res.Report.Quarantined != 1 {
		t.Fatalf("report = %s, want exactly shard 1 quarantined", res.Report)
	}
	if len(res.MissingShards) != 1 || res.MissingShards[0] != 1 {
		t.Fatalf("missing shards %v, want [1]", res.MissingShards)
	}
	if len(res.Study.Samples) != cfg.Servers-3 {
		t.Fatalf("partial study has %d samples, want %d", len(res.Study.Samples), cfg.Servers-3)
	}
}

// TestResumeWrongConfigRejected: campaign state never resumes across a
// changed configuration.
func TestResumeWrongConfigRejected(t *testing.T) {
	cfg := tinyConfig()
	dir := t.TempDir()
	if _, err := RunSupervised(context.Background(), SupervisedConfig{Fleet: cfg, Dir: dir}); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed++
	_, err := RunSupervised(context.Background(), SupervisedConfig{Fleet: other, Dir: dir, Resume: true})
	if !errors.Is(err, snapshot.ErrCampaignMismatch) {
		t.Fatalf("resume with changed seed returned %v, want ErrCampaignMismatch", err)
	}
}

// TestResumeMissingManifestTyped: resuming from a directory that never
// held a campaign (or whose manifest is a zero-byte torn file) must
// return the typed ErrNoManifest, not silently start fresh and not
// surface a generic decode error — callers route this to a usage exit.
func TestResumeMissingManifestTyped(t *testing.T) {
	cfg := tinyConfig()

	_, err := RunSupervised(context.Background(), SupervisedConfig{
		Fleet: cfg, Dir: t.TempDir(), Resume: true,
	})
	if !errors.Is(err, snapshot.ErrNoManifest) {
		t.Fatalf("resume from empty dir returned %v, want ErrNoManifest", err)
	}

	dir := t.TempDir()
	if werr := os.WriteFile(ManifestPath(dir), nil, 0o644); werr != nil {
		t.Fatal(werr)
	}
	_, err = RunSupervised(context.Background(), SupervisedConfig{
		Fleet: cfg, Dir: dir, Resume: true,
	})
	if !errors.Is(err, snapshot.ErrNoManifest) {
		t.Fatalf("resume from empty manifest returned %v, want ErrNoManifest", err)
	}
}

// TestCanonicalBytesIdentity: CanonicalBytes is the byte identity every
// robustness gate compares on — equal studies serialise equal, and any
// sample divergence changes the bytes (and the digest).
func TestCanonicalBytesIdentity(t *testing.T) {
	cfg := tinyConfig()
	a, b := Run(cfg), Run(cfg)
	if !bytes.Equal(CanonicalBytes(a), CanonicalBytes(b)) {
		t.Fatal("same-seed studies produced different canonical bytes")
	}
	if CanonicalDigest(a) != CanonicalDigest(b) {
		t.Fatal("same-seed studies produced different canonical digests")
	}
	other := cfg
	other.Seed++
	c := Run(other)
	if bytes.Equal(CanonicalBytes(a), CanonicalBytes(c)) {
		t.Fatal("different-seed studies produced identical canonical bytes")
	}
}
