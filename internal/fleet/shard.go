// Supervised campaign layer: the fleet study partitioned into
// deterministic shards executed under internal/supervise, with per-shard
// CTGSHRD checkpoints, a CTGMANI campaign manifest, injected-fault
// points, and resume-from-disk for killed processes.
//
// Determinism: shard i owns servers [spans[i].lo, spans[i].lo+spans[i].n)
// and draws their plans from stats.ShardSeed(cfg.Seed, i), so each
// shard's samples are a pure function of (Config, shard index). Shards
// merge into disjoint slots of the campaign sample slice in canonical
// order, making the merged study byte-identical across worker counts,
// schedules, injected kills, retries, and checkpoint/resume cycles.
//
// Crash-consistency: a shard checkpoint file is renamed into place
// before the manifest records it, so a process kill between the two
// renames leaves the manifest exactly one chain link behind. Resume
// accepts that torn window iff the checkpoint's PrevChainHash equals the
// manifest's recorded chain (the chain self-authenticates continuity)
// and rolls the manifest forward; any other disagreement is rejected
// with the snapshot package's typed sentinels.
package fleet

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"math"
	"path/filepath"
	"sync"
	"time"

	"contiguitas/internal/fault"
	"contiguitas/internal/mem"
	"contiguitas/internal/resultcache"
	"contiguitas/internal/snapshot"
	"contiguitas/internal/stats"
	"contiguitas/internal/supervise"
	"contiguitas/internal/telemetry"
)

// Default shard partition knobs. Config.Shards overrides the whole
// default: any positive value wins, including values above
// DefaultMaxShards. Shard granularity is also result-cache key
// granularity (see ShardCacheKey) — finer shards mean more, smaller
// units of reuse across sweeps, so campaigns tuned for cache sharing
// should pin Config.Shards rather than rely on the fleet-size default.
const (
	// DefaultServersPerShard is the target shard width when Config.Shards
	// is unset.
	DefaultServersPerShard = 16
	// DefaultMaxShards caps the *default* partition so small studies do
	// not fragment into per-server shards; it is not a limit on
	// Config.Shards.
	DefaultMaxShards = 16
)

// DefaultShards picks the shard count for a fleet size: one shard per
// DefaultServersPerShard servers, clamped to [1, DefaultMaxShards].
// Purely a function of the server count so the default partition never
// depends on the machine running the study.
func DefaultShards(servers int) int {
	if servers <= 0 {
		return 1
	}
	s := (servers + DefaultServersPerShard - 1) / DefaultServersPerShard
	if s > DefaultMaxShards {
		s = DefaultMaxShards
	}
	return s
}

// FaultPlan arms the campaign's injected faults. Each shard gets its own
// injector (seeded from stats.ShardSeed over the plan seed), so one
// shard's crossings never perturb another's fault schedule, and the
// schedule is reproducible bit-for-bit.
//
// Injectors live in memory for the whole process and are shared across a
// shard's attempts — hit counts accumulate monotonically, so an EveryN
// crash trigger does not re-fire at the same server on replay and the
// campaign makes forward progress (EveryN must be >= 2: a trigger firing
// on every crossing can never get past the server it keeps killing and
// ends in quarantine, which is the correct diagnosis).
type FaultPlan struct {
	// Seed separates the fault schedule from the study seed (0 uses the
	// study seed).
	Seed uint64
	// CrashProb / CrashEveryN arm fault.PointFleetShardCrash: the shard
	// attempt panics at a server boundary, losing work since its last
	// checkpoint.
	CrashProb   float64
	CrashEveryN uint64
	// CheckpointFailProb / CheckpointFailEveryN arm
	// fault.PointFleetCheckpointWrite: the checkpoint write fails and the
	// attempt crashes with an error.
	CheckpointFailProb   float64
	CheckpointFailEveryN uint64
}

func (p FaultPlan) armed() bool {
	return p.CrashProb > 0 || p.CrashEveryN > 0 ||
		p.CheckpointFailProb > 0 || p.CheckpointFailEveryN > 0
}

func (p FaultPlan) injector(studySeed uint64, shard int) *fault.Injector {
	if !p.armed() {
		return nil
	}
	seed := p.Seed
	if seed == 0 {
		seed = studySeed
	}
	in := fault.New(stats.ShardSeed(seed^0xfa1107, shard))
	if p.CrashProb > 0 || p.CrashEveryN > 0 {
		in.Arm(fault.PointFleetShardCrash, fault.Trigger{Prob: p.CrashProb, EveryN: p.CrashEveryN})
	}
	if p.CheckpointFailProb > 0 || p.CheckpointFailEveryN > 0 {
		in.Arm(fault.PointFleetCheckpointWrite, fault.Trigger{Prob: p.CheckpointFailProb, EveryN: p.CheckpointFailEveryN})
	}
	return in
}

// SupervisedConfig parameterises a supervised campaign around the plain
// study Config.
type SupervisedConfig struct {
	Fleet Config
	// Workers / MaxAttempts / Backoff* / Heartbeat pass through to
	// supervise.Config (zero values pick that package's defaults;
	// Heartbeat 0 disables the watchdog).
	Workers     int
	MaxAttempts int
	BackoffBase time.Duration
	BackoffCap  time.Duration
	Heartbeat   time.Duration
	// Dir is the campaign state directory: one manifest plus one
	// checkpoint file per shard, all written atomically. Empty keeps
	// checkpoints in memory (retries still resume; process kills lose
	// everything).
	Dir string
	// Resume loads the manifest in Dir (required) and continues the
	// campaign: finished shards replay from their final checkpoint
	// without recomputing, unfinished shards resume mid-stream, and
	// quarantined shards get a fresh attempt budget (their manifest
	// attempt count keeps accumulating).
	Resume bool
	// CheckpointEvery is the per-shard checkpoint cadence in completed
	// servers (0 = every server). Checkpointing is active whenever Dir is
	// set, faults are armed, or this field is positive.
	CheckpointEvery int
	Faults          FaultPlan
	// OnEvent observes supervision events after the manifest is updated
	// (called from the supervisor goroutine, in order).
	OnEvent func(supervise.Event)
	Trace   *telemetry.Ring
	Metrics *telemetry.Registry
	// Cache is the content-addressed shard result store (nil disables).
	// At shard open a trusted entry replaces the whole simulation; at
	// shard completion the fresh samples populate the store. Rejected
	// entries (corrupt, torn, stale schema) are counted and recomputed —
	// the cache can only ever cost correctness nothing.
	Cache resultcache.Cache
	// CacheWait bounds how long a shard waits for a concurrent identical
	// computation (singleflight follower) before simulating anyway
	// (<= 0 picks a default; the wait is always bounded).
	CacheWait time.Duration
	// Progress, when set, receives the campaign's live progress: the
	// supervise.Observer lifecycle stream plus fleet-level unit counts
	// and cache tallies (nil disables). The obsv campaign board
	// implements it.
	Progress ProgressSink
}

// ProgressSink extends supervise.Observer with the fleet-level progress
// only this layer can see: per-shard completed work units (servers) and
// the campaign's cumulative result-cache tallies.
//
// Threading: the embedded supervise.Observer methods keep that
// interface's contract (supervisor goroutine, ordered), but ObserveUnits
// and ObserveCache are called from worker goroutines as checkpoints land
// and cache lookups resolve — implementations synchronize internally and
// must not block.
type ProgressSink interface {
	supervise.Observer
	// ObserveUnits reports shard having completed done of total work
	// units. Monotonic per shard within one process, except that a
	// crashed attempt resuming from an older checkpoint may briefly
	// report fewer done units than its dead predecessor reached.
	ObserveUnits(shard int, done, total uint64)
	// ObserveCache reports the campaign's cumulative cache tallies after
	// a lookup resolved.
	ObserveCache(hits, misses, rejects uint64)
}

// CampaignResult is what a supervised campaign produces: always a study
// and a report, even when shards were lost.
type CampaignResult struct {
	// Study holds every server when Report.Complete; otherwise only the
	// finished shards' servers, concatenated in canonical shard order —
	// a statistically valid (if smaller) fleet sample, never silently
	// padded with zero rows.
	Study    *Study
	Report   *supervise.Report
	Manifest *snapshot.Manifest
	// MissingShards lists shards excluded from Study (quarantined, or
	// unfinished at cancellation).
	MissingShards []int
	// KillsInjected / CheckpointFaultsInjected total the fault firings
	// across all shard injectors.
	KillsInjected            uint64
	CheckpointFaultsInjected uint64
	// Cache tallies (zero when no cache is configured). These count
	// lookup events, not shards: a shard that crashes and retries looks
	// the cache up once per attempt. A reject is never also a miss.
	CacheHits    uint64
	CacheMisses  uint64
	CacheRejects uint64
}

// ManifestPath locates the campaign manifest inside a state directory.
func ManifestPath(dir string) string { return filepath.Join(dir, "campaign.ctgmani") }

func shardPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.ctgshrd", shard))
}

// campaignFingerprint digests every Config field that shapes results,
// plus the shard count; checkpoints and manifests never resume across a
// changed fingerprint.
func campaignFingerprint(cfg Config, shards int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range []uint64{
		uint64(cfg.Servers), cfg.MemBytes, uint64(cfg.Design),
		cfg.TicksMin, cfg.TicksMax, math.Float64bits(cfg.JitterFrac),
		cfg.Seed, uint64(shards),
	} {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// span is one shard's slice of the fleet: servers [lo, lo+n).
type span struct{ lo, n uint64 }

func splitSpans(servers, shards int) []span {
	out := make([]span, shards)
	base := servers / shards
	rem := servers % shards
	var lo uint64
	for i := range out {
		n := uint64(base)
		if i < rem {
			n++
		}
		out[i] = span{lo: lo, n: n}
		lo += n
	}
	return out
}

// ckptStore abstracts where shard checkpoints live: a directory of
// CTGSHRD files, or process memory for ephemeral campaigns.
type ckptStore interface {
	write(ck *snapshot.ShardCheckpoint) error
	// read returns the shard's last checkpoint, nil if none exists yet.
	read(shard int) (*snapshot.ShardCheckpoint, error)
}

type memStore struct {
	mu      sync.Mutex
	byShard map[int]*snapshot.ShardCheckpoint
}

func newMemStore() *memStore {
	return &memStore{byShard: make(map[int]*snapshot.ShardCheckpoint)}
}

func (s *memStore) write(ck *snapshot.ShardCheckpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byShard[ck.Shard] = ck
	return nil
}

func (s *memStore) read(shard int) (*snapshot.ShardCheckpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byShard[shard], nil
}

type dirStore struct{ dir string }

func (s dirStore) write(ck *snapshot.ShardCheckpoint) error {
	return snapshot.WriteShard(shardPath(s.dir, ck.Shard), ck)
}

func (s dirStore) read(shard int) (*snapshot.ShardCheckpoint, error) {
	ck, err := snapshot.ReadShard(shardPath(s.dir, shard))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	return ck, err
}

// campaign is the shared state of one supervised study: the sample merge
// slots, the checkpoint store, the per-shard injectors, and the manifest
// mirror guarded by mu (checkpoint notes arrive from worker goroutines,
// lifecycle notes from the supervisor goroutine).
type campaign struct {
	cfg           SupervisedConfig
	fp            uint64
	spans         []span
	samples       []Sample
	store         ckptStore
	checkpointing bool
	ckptEvery     uint64
	injectors     []*fault.Injector

	// Result cache (nil disables). cacheKeys holds one content address
	// per shard; cacheWait bounds singleflight follower waits.
	cache     resultcache.Cache
	cacheKeys []uint64
	cacheWait time.Duration

	mu   sync.Mutex
	man  *snapshot.Manifest
	base []uint64 // manifest attempt counts inherited from prior processes
	// Per-shard cache verdicts (guarded by mu; written from worker
	// goroutines, read by the supervisor goroutine for tracepoints) and
	// the campaign tallies surfaced in CampaignResult.
	cacheState        []cacheOutcome
	cacheRejected     []bool
	cacheRejectReason []uint64
	cacheHits         uint64
	cacheMisses       uint64
	cacheRejects      uint64
}

// RunSupervised executes the study as a supervised sharded campaign.
// Setup and resume failures (bad state directory, tampered manifest,
// fingerprint mismatch) return an error; execution failures never do —
// they degrade the CampaignResult's report instead.
func RunSupervised(ctx context.Context, scfg SupervisedConfig) (*CampaignResult, error) {
	// A pre-cancelled context is a setup error, not a degraded run: report
	// the cancellation instead of returning an empty "incomplete" result
	// (which would surface as fleet.Run's unfaulted-study panic).
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("fleet: campaign canceled before start: %w", err)
	}
	fcfg := scfg.Fleet
	if fcfg.Servers <= 0 {
		return nil, fmt.Errorf("fleet: campaign needs at least one server")
	}
	shards := resolveShards(fcfg)

	c := &campaign{
		cfg:     scfg,
		fp:      campaignFingerprint(fcfg, shards),
		spans:   splitSpans(fcfg.Servers, shards),
		samples: make([]Sample, fcfg.Servers),
		base:    make([]uint64, shards),
	}
	c.checkpointing = scfg.Dir != "" || scfg.Faults.armed() || scfg.CheckpointEvery > 0
	c.ckptEvery = uint64(scfg.CheckpointEvery)
	if c.ckptEvery == 0 {
		c.ckptEvery = 1
	}
	if scfg.Dir != "" {
		c.store = dirStore{dir: scfg.Dir}
	} else {
		c.store = newMemStore()
	}
	c.injectors = make([]*fault.Injector, shards)
	for i := range c.injectors {
		c.injectors[i] = scfg.Faults.injector(fcfg.Seed, i)
	}
	if scfg.Cache != nil {
		c.cache = scfg.Cache
		c.cacheWait = scfg.CacheWait
		if c.cacheWait <= 0 {
			c.cacheWait = defaultCacheWait
		}
		c.cacheKeys = make([]uint64, shards)
		for i := range c.cacheKeys {
			c.cacheKeys[i] = ShardCacheKey(fcfg, i)
		}
		c.cacheState = make([]cacheOutcome, shards)
		c.cacheRejected = make([]bool, shards)
		c.cacheRejectReason = make([]uint64, shards)
		// Whatever happens below, never exit still leading a singleflight
		// key — followers in other campaigns would wait out their timeout.
		defer c.releaseFlight()
	}

	if scfg.Resume {
		if scfg.Dir == "" {
			return nil, fmt.Errorf("fleet: resume requires a state directory")
		}
		m, err := snapshot.ReadManifest(ManifestPath(scfg.Dir))
		if err != nil {
			return nil, err
		}
		if m.Campaign != c.fp {
			return nil, fmt.Errorf("%w: manifest %016x, configuration %016x",
				snapshot.ErrCampaignMismatch, m.Campaign, c.fp)
		}
		if len(m.Shards) != shards {
			return nil, fmt.Errorf("%w: manifest has %d shards, configuration %d",
				snapshot.ErrCampaignMismatch, len(m.Shards), shards)
		}
		c.man = m
		for i := range m.Shards {
			c.base[i] = m.Shards[i].Attempts
			// A fresh process grants quarantined shards a fresh budget;
			// their lifetime attempt count keeps accumulating.
			if m.Shards[i].Status == snapshot.ShardQuarantined {
				m.Shards[i].Status = snapshot.ShardPending
			}
		}
	} else {
		c.man = &snapshot.Manifest{Campaign: c.fp, Shards: make([]snapshot.ManifestShard, shards)}
		for i := range c.man.Shards {
			c.man.Shards[i] = snapshot.ManifestShard{Shard: i, Units: c.spans[i].n}
		}
		if scfg.Dir != "" {
			c.mu.Lock()
			err := c.persistLocked()
			c.mu.Unlock()
			if err != nil {
				return nil, err
			}
		}
	}

	// Seed the progress board with every shard's span (and, on resume,
	// the units the manifest already credits) before the first attempt
	// dispatches, so totals never appear as zero mid-flight.
	var observer supervise.Observer
	if scfg.Progress != nil {
		observer = scfg.Progress
		for i := range c.spans {
			scfg.Progress.ObserveUnits(i, c.man.Shards[i].Done, c.spans[i].n)
		}
	}

	rep := supervise.Run(ctx, supervise.Config{
		Shards:      shards,
		Workers:     scfg.Workers,
		MaxAttempts: scfg.MaxAttempts,
		BackoffBase: scfg.BackoffBase,
		BackoffCap:  scfg.BackoffCap,
		Heartbeat:   scfg.Heartbeat,
		Open:        c.open,
		OnEvent:     c.onEvent,
		Observer:    observer,
		Trace:       scfg.Trace,
		Metrics:     scfg.Metrics,
	})

	res := &CampaignResult{Report: rep, Manifest: c.man}
	for _, in := range c.injectors {
		res.KillsInjected += in.Fired(fault.PointFleetShardCrash)
		res.CheckpointFaultsInjected += in.Fired(fault.PointFleetCheckpointWrite)
	}
	if c.cache != nil {
		c.mu.Lock()
		res.CacheHits, res.CacheMisses, res.CacheRejects = c.cacheHits, c.cacheMisses, c.cacheRejects
		c.mu.Unlock()
		if reg := scfg.Metrics; reg != nil {
			// Counters are single-writer; fold the campaign tallies in once,
			// here, after every worker has joined. Reuse-by-name so repeated
			// campaigns against one registry accumulate.
			counter := func(name string) *telemetry.Counter {
				if mc := reg.Counter(name); mc != nil {
					return mc
				}
				return reg.NewCounter(name)
			}
			counter("cache_hits").Add(res.CacheHits)
			counter("cache_misses").Add(res.CacheMisses)
			counter("cache_rejects").Add(res.CacheRejects)
		}
	}
	if rep.Complete {
		res.Study = &Study{Cfg: fcfg, Samples: c.samples}
		return res, nil
	}
	// Partial degradation: keep finished shards' servers in canonical
	// shard order, name the missing shards explicitly.
	partial := make([]Sample, 0, len(c.samples))
	for i := range rep.Shards {
		if rep.Shards[i].Status == supervise.StatusDone {
			sp := c.spans[i]
			partial = append(partial, c.samples[sp.lo:sp.lo+sp.n]...)
		} else {
			res.MissingShards = append(res.MissingShards, i)
		}
	}
	res.Study = &Study{Cfg: fcfg, Samples: partial}
	return res, nil
}

// open creates or resumes one shard attempt. The result cache is
// consulted first (a trusted whole-shard entry finishes the shard before
// its first Step — no plans, no checkpoint restore); otherwise plans are
// redrawn from the shard's seed (cheap, deterministic) and progress is
// restored from the shard's last checkpoint after verifying it against
// the manifest. Open runs on a worker goroutine before the heartbeat
// watchdog arms, so the bounded singleflight wait inside tryCache is
// safe here.
func (c *campaign) open(shard, attempt int) (supervise.Shard, error) {
	sp := c.spans[shard]
	sr := &shardRun{c: c, shard: shard, units: sp.n, inj: c.injectors[shard]}
	sr.samples = make([]Sample, sp.n)
	if c.cache != nil && c.tryCache(sr) {
		return sr, nil
	}
	rng := stats.NewRNG(stats.ShardSeed(c.cfg.Fleet.Seed, shard))
	sr.plans = drawPlans(c.cfg.Fleet, rng, int(sp.n))
	if !c.checkpointing {
		return sr, nil
	}
	ck, err := c.store.read(shard)
	if err != nil || ck == nil {
		return sr, err
	}
	if err := c.adoptCheckpoint(ck); err != nil {
		return nil, err
	}
	var done []Sample
	if err := gob.NewDecoder(bytes.NewReader(ck.Payload)).Decode(&done); err != nil {
		return nil, fmt.Errorf("%w: shard %d payload: %v", snapshot.ErrShardCheckpoint, shard, err)
	}
	if uint64(len(done)) != ck.Done || ck.Done > sp.n {
		return nil, fmt.Errorf("%w: shard %d payload holds %d samples, header says %d of %d",
			snapshot.ErrShardCheckpoint, shard, len(done), ck.Done, sp.n)
	}
	copy(sr.samples, done)
	sr.done = ck.Done
	sr.seq = ck.Seq
	sr.chain = ck.ChainHash
	return sr, nil
}

// adoptCheckpoint verifies a loaded checkpoint against the manifest.
// The one disagreement it forgives is the crash-consistency window: the
// checkpoint is exactly one sealed link ahead of the manifest record
// (its PrevChainHash equals the recorded chain), in which case the
// manifest rolls forward.
func (c *campaign) adoptCheckpoint(ck *snapshot.ShardCheckpoint) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := snapshot.VerifyShardAgainstManifest(c.man, ck)
	if err == nil {
		return nil
	}
	if errors.Is(err, snapshot.ErrShardMismatch) && ck.Shard >= 0 && ck.Shard < len(c.man.Shards) {
		rec := &c.man.Shards[ck.Shard]
		if ck.Seq == rec.Seq+1 && ck.PrevChainHash == rec.Chain && ck.Done >= rec.Done {
			rec.Seq, rec.Chain, rec.Done = ck.Seq, ck.ChainHash, ck.Done
			return c.persistLocked()
		}
	}
	return err
}

// noteCheckpoint records a freshly written checkpoint in the manifest.
// Called from worker goroutines, hence the lock.
func (c *campaign) noteCheckpoint(ck *snapshot.ShardCheckpoint) error {
	c.mu.Lock()
	rec := &c.man.Shards[ck.Shard]
	rec.Seq, rec.Chain, rec.Done = ck.Seq, ck.ChainHash, ck.Done
	err := c.persistLocked()
	c.mu.Unlock()
	if p := c.cfg.Progress; p != nil {
		p.ObserveUnits(ck.Shard, ck.Done, c.spans[ck.Shard].n)
	}
	return err
}

// persistLocked seals and atomically rewrites the manifest when the
// campaign is durable. Callers hold c.mu.
func (c *campaign) persistLocked() error {
	if c.cfg.Dir == "" {
		return nil
	}
	c.man.Seal()
	return snapshot.WriteManifest(ManifestPath(c.cfg.Dir), c.man)
}

// onEvent folds supervision decisions into the manifest (attempt counts,
// terminal statuses) before forwarding to the owner's callback. Runs on
// the supervisor goroutine only.
func (c *campaign) onEvent(ev supervise.Event) {
	c.mu.Lock()
	rec := &c.man.Shards[ev.Shard]
	if a := c.base[ev.Shard] + uint64(ev.Attempt); a > rec.Attempts {
		rec.Attempts = a
	}
	switch ev.Kind {
	case supervise.EventDone:
		rec.Status = snapshot.ShardDone
		// Cache tracepoints ride the done event so they are emitted from
		// the supervisor goroutine (the Ring's single-writer contract).
		if c.cache != nil && c.cfg.Trace.Enabled() {
			key := c.cacheKeys[ev.Shard]
			if c.cacheRejected[ev.Shard] {
				c.cfg.Trace.Emit(uint64(ev.Attempt), telemetry.EvCacheReject,
					uint64(ev.Shard), key, c.cacheRejectReason[ev.Shard])
			}
			switch c.cacheState[ev.Shard] {
			case cacheHit:
				c.cfg.Trace.Emit(uint64(ev.Attempt), telemetry.EvCacheHit,
					uint64(ev.Shard), key, c.spans[ev.Shard].n)
			case cacheMiss:
				c.cfg.Trace.Emit(uint64(ev.Attempt), telemetry.EvCacheMiss,
					uint64(ev.Shard), key, c.spans[ev.Shard].n)
			}
		}
	case supervise.EventQuarantine:
		rec.Status = snapshot.ShardQuarantined
	}
	// Best-effort: a lost lifecycle write self-heals on resume (the
	// checkpoint chain carries progress; attempts only ever undercount).
	_ = c.persistLocked()
	c.mu.Unlock()
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(ev)
	}
}

// shardRun is one shard attempt: a supervise.Shard stepping one server
// at a time, checkpointing on its cadence, and crossing the injected
// fault points at server boundaries.
type shardRun struct {
	c          *campaign
	shard      int
	units      uint64
	done       uint64
	seq, chain uint64
	plans      []serverPlan
	samples    []Sample
	scratch    mem.ContiguityStats
	inj        *fault.Injector
	// fromCache marks a shard served wholly from the result cache;
	// cachePut arms population (and singleflight release) at completion.
	fromCache bool
	cachePut  bool
	cacheKey  uint64
}

// Step simulates the next server. The injected crash fires after the
// server completes but before it is checkpointed, so a kill genuinely
// loses work and the retry genuinely recomputes it.
func (sr *shardRun) Step() (bool, error) {
	if sr.done >= sr.units {
		sr.finish()
		return true, nil
	}
	sr.samples[sr.done] = runServer(sr.c.cfg.Fleet, sr.plans[sr.done], &sr.scratch)
	sr.done++
	if sr.inj.Should(fault.PointFleetShardCrash) {
		panic(fmt.Sprintf("fleet: injected shard crash (shard %d, %d/%d servers)",
			sr.shard, sr.done, sr.units))
	}
	if sr.c.checkpointing && (sr.done == sr.units || sr.done%sr.c.ckptEvery == 0) {
		if err := sr.checkpoint(); err != nil {
			return false, err
		}
	}
	if sr.done >= sr.units {
		sr.finish()
		return true, nil
	}
	return false, nil
}

// finish merges the completed shard and, when this attempt owns the
// shard's cache key, populates the result cache and releases its
// singleflight followers. A cache-hit shard (fromCache, cachePut unset)
// merges without re-writing the entry it was served from; a shard that
// resumed to completion from a checkpoint still populates — its samples
// are the same pure function of the inputs.
func (sr *shardRun) finish() {
	sr.publish()
	if p := sr.c.cfg.Progress; p != nil {
		p.ObserveUnits(sr.shard, sr.units, sr.units)
	}
	if sr.cachePut {
		sr.c.populateCache(sr)
	}
}

// checkpoint seals the next chain link over the completed samples,
// writes it, and records it in the manifest.
func (sr *shardRun) checkpoint() error {
	if sr.inj.Should(fault.PointFleetCheckpointWrite) {
		return fmt.Errorf("fleet: injected checkpoint write failure (shard %d, seq %d)",
			sr.shard, sr.seq+1)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sr.samples[:sr.done]); err != nil {
		return fmt.Errorf("fleet: encode shard %d checkpoint: %w", sr.shard, err)
	}
	ck := &snapshot.ShardCheckpoint{
		Campaign: sr.c.fp,
		Shard:    sr.shard,
		Seq:      sr.seq + 1,
		Done:     sr.done,
		Payload:  buf.Bytes(),
	}
	chain := ck.Seal(sr.chain)
	if err := sr.c.store.write(ck); err != nil {
		return fmt.Errorf("fleet: write shard %d checkpoint: %w", sr.shard, err)
	}
	if err := sr.c.noteCheckpoint(ck); err != nil {
		return fmt.Errorf("fleet: record shard %d checkpoint: %w", sr.shard, err)
	}
	sr.seq, sr.chain = ck.Seq, chain
	return nil
}

// publish merges the shard's samples into its disjoint campaign slot.
func (sr *shardRun) publish() {
	sp := sr.c.spans[sr.shard]
	copy(sr.c.samples[sp.lo:sp.lo+sp.n], sr.samples[:sr.units])
}
