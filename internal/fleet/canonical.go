// Canonical study serialisation: the byte-exact identity every
// robustness gate in this repository compares on. Two studies are equal
// iff their canonical bytes are — a stronger check than comparing
// printed CDFs, and the contract behind "byte-identical across worker
// counts, crashes, retries, checkpoint/resume, and process restarts"
// (the fleetscan -soak gate, the service layer's result files, and the
// CI service-soak job all cmp these bytes).
package fleet

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"math"

	"contiguitas/internal/mem"
)

// CanonicalBytes serialises every sample field in canonical order (map
// keys walked via the fixed scan-order list), independent of how the
// study was scheduled or resumed.
func CanonicalBytes(s *Study) []byte {
	var buf bytes.Buffer
	u64 := func(v uint64) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	u64(uint64(len(s.Samples)))
	for i := range s.Samples {
		smp := &s.Samples[i]
		buf.WriteString(smp.Profile)
		buf.WriteByte(0)
		u64(smp.Uptime)
		u64(smp.FreePages)
		u64(smp.Free2MBlocks)
		f64(smp.UnmovFrameFrac)
		for _, o := range mem.ScanOrders {
			f64(smp.FreeContigFrac[o])
			f64(smp.UnmovBlockFrac[o])
		}
		for _, v := range smp.SourceBreakdown {
			u64(v)
		}
	}
	return buf.Bytes()
}

// CanonicalDigest returns the FNV-1a digest of CanonicalBytes — the
// compact result identity stored in service campaign records.
func CanonicalDigest(s *Study) uint64 {
	h := fnv.New64a()
	h.Write(CanonicalBytes(s))
	return h.Sum64()
}
