package main

import (
	"fmt"
	"os"

	"contiguitas/internal/kernel"
	"contiguitas/internal/mem"
	"contiguitas/internal/psi"
	"contiguitas/internal/snapshot"
	"contiguitas/internal/telemetry"
	"contiguitas/internal/workload"
)

// traceRun drives one fully instrumented kernel and exports every
// telemetry artifact: a Perfetto-loadable Chrome trace with distinct
// migration/compaction/resize tracks, the per-tick metrics JSONL, an
// optional greppable text timeline, and the Fig. 13-style migration
// latency histograms printed to stdout.
//
// With ckptEvery > 0 the full machine is checkpointed to ckptOut every
// ckptEvery ticks at the end-of-tick quiesce boundary; with resume set
// the run restores from that file and continues to the same end tick
// (the telemetry ring restarts — only simulator state is checkpointed).
func traceRun(mode kernel.Mode, memBytes, ticks, seed uint64, traceOut, metricsOut, timelineOut string, ckptEvery uint64, ckptOut, resume string) error {
	cfg := kernel.DefaultConfig(mode)
	cfg.MemBytes = memBytes
	cfg.InitialUnmovableBytes = memBytes / 8
	cfg.MinUnmovableBytes = memBytes / 32
	cfg.MaxUnmovableBytes = memBytes / 2
	cfg.HWMover = kernel.NewAnalyticMover()
	cfg.Seed = seed

	// The chaos soak's overcommitted Web profile: enough pressure that
	// reclaim, compaction, and the migration ladder all see traffic.
	p := workload.Web()
	p.UserFrac = 0.79
	p.PageCacheFrac = 0.09

	cp := &snapshot.Checkpointer{Path: ckptOut}
	var k *kernel.Kernel
	var r *workload.Runner
	startTick := uint64(0)
	if resume != "" {
		e, err := snapshot.Read(resume)
		if err != nil {
			return err
		}
		k, err = kernel.Restore(cfg, e.Machine.Kernel)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		r, err = workload.RestoreRunner(k, p, seed, e.Machine.Runner)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		startTick = e.Tick
		cp.SetChain(e.Seq+1, e.ChainHash)
		fmt.Printf("resumed from %s: seq=%d tick=%d state=%016x\n", resume, e.Seq, e.Tick, e.StateHash)
	} else {
		k = kernel.New(cfg)
		r = workload.NewRunner(k, p, seed)
	}

	tp := telemetry.NewRing(1 << 16)
	k.SetTracer(tp)
	sampler := k.AttachSampler(int(ticks) + 1)
	pub := obsvHandle.Attach(k.Metrics(), tp)
	pub.Publish(startTick)

	for tick := startTick; tick < ticks; tick++ {
		r.Step()
		pub.Pump(tick)
		// Deterministic pulses keep every timeline track populated: the
		// HugeTLB probe forces direct compaction, the defrag pass drives
		// the hardware mover.
		if tick%25 == 0 {
			huge := k.AllocHugeTLB(mem.Order2M, 2)
			k.FreeHugeTLB(&huge)
		}
		if mode == kernel.ModeContiguitas && tick%50 == 49 {
			k.DefragUnmovable()
		}
		if ckptEvery > 0 && (tick+1)%ckptEvery == 0 {
			if _, err := cp.Take(tick+1, k, r, nil); err != nil {
				return fmt.Errorf("checkpoint: %w", err)
			}
		}
	}
	pub.Publish(ticks)
	if last := cp.Last(); last != nil {
		fmt.Printf("last snapshot: %s seq=%d tick=%d state=%016x chain=%016x\n",
			ckptOut, last.Seq, last.Tick, last.StateHash, last.ChainHash)
	}

	// Flush-all: every artifact is attempted even when a sibling's write
	// fails, so one bad output path cannot cost the others.
	if err := telemetry.ExportAll(
		telemetry.ChromeTraceArtifact(traceOut, tp, sampler),
		telemetry.MetricsJSONLArtifact(metricsOut, sampler),
		telemetry.TimelineArtifact(timelineOut, tp),
	); err != nil {
		return fmt.Errorf("telemetry export: %w", err)
	}

	fmt.Printf("== traced run: %s, %d MiB, %d ticks ==\n", mode, memBytes>>20, ticks)
	fmt.Printf("trace:   %s (load in Perfetto / chrome://tracing)\n", traceOut)
	fmt.Printf("metrics: %s\n", metricsOut)
	if timelineOut != "" {
		fmt.Printf("timeline: %s\n", timelineOut)
	}
	fmt.Printf("events: %d retained, %d overwritten (ring cap %d)\n",
		tp.Len(), tp.Overwritten(), tp.Cap())

	fmt.Println("\n-- per-tick stall/latency breakdown --")
	w := table()
	c := k.Counters
	fmt.Fprintf(w, "ticks\t%d\n", k.Tick())
	fmt.Fprintf(w, "allocations\t%d ok, %d failed\n", c.AllocOK, c.AllocFail)
	fmt.Fprintf(w, "direct reclaims\t%d (%.3f/tick)\n", c.DirectReclaim, float64(c.DirectReclaim)/float64(k.Tick()))
	fmt.Fprintf(w, "compaction\t%d runs, %d success, %d deferred\n", c.CompactRuns, c.CompactSuccess, c.CompactDeferred)
	fmt.Fprintf(w, "sw migrations\t%d (%d cycles total)\n", c.SWMigrations, c.SWMigrationCycles)
	fmt.Fprintf(w, "hw migrations\t%d (%d cycles total)\n", c.HWMigrations, c.HWMigrationCycles)
	fmt.Fprintf(w, "psi unmovable\t%.2f%% (lifetime stall %.1f ticks)\n",
		k.PSI().Pressure(psi.RegionUnmovable), k.PSI().Snapshot(psi.RegionUnmovable).TotalStall)
	fmt.Fprintf(w, "psi movable\t%.2f%% (lifetime stall %.1f ticks)\n",
		k.PSI().Pressure(psi.RegionMovable), k.PSI().Snapshot(psi.RegionMovable).TotalStall)
	w.Flush()

	fmt.Println("\n-- migration latency histograms (Fig. 13 style) --")
	return telemetry.WriteHistograms(os.Stdout, k.Metrics(), "cycles")
}
