package main

import (
	"fmt"
	"os"

	"contiguitas/internal/kernel"
	"contiguitas/internal/pressure"
	"contiguitas/internal/telemetry"
	"contiguitas/internal/workload"
)

// pressureSweep ramps a Web-profile service from half of machine memory
// to peak× machine memory and verifies the machine degrades through the
// pressure ladder instead of falling over. The run fails (non-nil error,
// driving a non-zero exit) unless it completes with zero invariant
// violations, at least one OOM kill and one emergency shrink, p99
// per-allocation stall within the configured throttle ceiling, and the
// emergency rungs first reached in ladder order.
func pressureSweep(memBytes, ticks uint64, peak float64, seed uint64) error {
	fmt.Printf("== pressure sweep: %d MiB, %d ticks, demand 0.5x -> %.1fx ==\n",
		memBytes>>20, ticks, peak)

	var reg *telemetry.Registry
	rep, err := workload.RunPressureSweep(workload.SweepOptions{
		MemBytes:   memBytes,
		Ticks:      ticks,
		Seed:       seed,
		PeakFactor: peak,
		OnKernel:   func(k *kernel.Kernel) { reg = k.Metrics() },
		Progress: func(tick uint64, factor float64, violation error) {
			if violation != nil {
				fmt.Printf("tick %5d  demand %.2fx  INVARIANT VIOLATION: %v\n", tick, factor, violation)
			}
		},
	})
	if err != nil {
		return err
	}

	c := rep.Counters
	w := table()
	fmt.Fprintf(w, "allocations\t%d ok, %d failed, %d shed\n", c.AllocOK, c.AllocFail, c.AllocShed)
	fmt.Fprintf(w, "throttled\t%d allocs, %d stall cycles total\n", c.AllocThrottled, c.ThrottleStallCycles)
	fmt.Fprintf(w, "emergency shrinks\t%d (%d pages, %d deferred)\n",
		c.EmergencyShrinks, c.EmergencyShrinkPages, c.EmergencyShrinkDeferred)
	fmt.Fprintf(w, "oom kills\t%d (%d pages freed, %d absorbed by runner)\n",
		c.OOMKills, c.OOMKilledPages, rep.OOMKillsTaken)
	fmt.Fprintf(w, "thp fallbacks\t%d\n", c.THPFallbacks)
	fmt.Fprintf(w, "alloc stall p99\t%d cycles (ceiling %d)\n", rep.StallP99, rep.StallCeiling)
	fmt.Fprintf(w, "final state hash\t%016x\n", rep.FinalStateHash)
	w.Flush()

	fmt.Println("\n-- ladder escalation profile --")
	w = table()
	for r := 0; r < pressure.NumRungs; r++ {
		first := "-"
		if rep.Escalation.Hits[r] > 0 {
			first = fmt.Sprintf("tick %d", rep.Escalation.FirstTick[r])
		}
		fmt.Fprintf(w, "%v\t%d hits\tfirst %s\n", pressure.Rung(r), rep.Escalation.Hits[r], first)
	}
	w.Flush()
	for _, kill := range rep.OOMHistory {
		fmt.Printf("oom kill: tick %d victim %s badness %d freed %d pages\n",
			kill.Tick, kill.Victim, kill.Badness, kill.PagesFreed)
	}

	fmt.Println()
	if err := telemetry.WriteHistograms(os.Stdout, reg, "cycles"); err != nil {
		return err
	}

	var fail []string
	if !rep.Completed {
		fail = append(fail, "sweep did not complete")
	}
	for _, v := range rep.Violations {
		fail = append(fail, v)
	}
	if c.OOMKills < 1 {
		fail = append(fail, "no OOM kill observed")
	}
	if c.EmergencyShrinks < 1 {
		fail = append(fail, "no emergency shrink observed")
	}
	if rep.StallP99 > rep.StallCeiling {
		fail = append(fail, fmt.Sprintf("p99 alloc stall %d cycles exceeds ceiling %d", rep.StallP99, rep.StallCeiling))
	}
	if !rep.EscalationOrdered {
		fail = append(fail, "ladder escalated out of order")
	}
	if len(fail) > 0 {
		for _, f := range fail {
			fmt.Fprintf(os.Stderr, "FAIL: %s\n", f)
		}
		return fmt.Errorf("pressure sweep failed %d acceptance check(s)", len(fail))
	}
	fmt.Println("PASS: survived exhaustion with bounded stalls and ordered degradation")
	return nil
}
