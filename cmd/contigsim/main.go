// Command contigsim regenerates the paper's evaluation figures and
// tables from the simulators. Each experiment is addressed by the id
// the paper uses:
//
//	contigsim -exp fig2            # memory capacity vs TLB coverage
//	contigsim -exp fig3            # page-walk cycle percentages
//	contigsim -exp fig10           # end-to-end performance
//	contigsim -exp fig11           # unmovable 2MB blocks
//	contigsim -exp fig12           # potential contiguity
//	contigsim -exp fig13           # page-unavailable cycles
//	contigsim -exp sec52           # unmovable-region internal fragmentation
//	contigsim -exp sec53           # migration-rate impact + sizing
//	contigsim -exp tab1            # architectural parameters
//	contigsim -exp all             # everything
//
// Scale flags (-mem, -ticks, -seed) trade fidelity for runtime; the
// defaults are the simulation scale recorded in EXPERIMENTS.md.
//
// -trace replaces the experiment run with one fully instrumented kernel
// run and exports its telemetry:
//
//	contigsim -trace -trace-out results/run.json   # Perfetto-loadable
//
// alongside a per-tick metrics JSONL (-metrics-out), an optional text
// timeline (-timeline-out), and the Fig. 13-style migration-latency
// histograms on stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"contiguitas"
	"contiguitas/internal/cli"
	"contiguitas/internal/core"
	"contiguitas/internal/hw"
	"contiguitas/internal/kernel"
	"contiguitas/internal/mem"
	"contiguitas/internal/obsv"
	"contiguitas/internal/prof"
	"contiguitas/internal/resize"
)

// obsvHandle is the -serve plane (nil when the flag is off); traceRun
// attaches the instrumented kernel's registry and ring to it.
var obsvHandle *obsv.Handle

func main() {
	exp := flag.String("exp", "all", "experiment id (fig2|fig3|fig10|fig11|fig12|fig13|sec52|sec53|tab1|ablations|all)")
	memGB := flag.Uint64("mem", 8, "simulated machine memory in GiB")
	ticks := flag.Uint64("ticks", 400, "workload warmup ticks")
	seed := flag.Uint64("seed", 42, "simulation seed")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	trace := flag.Bool("trace", false, "run one instrumented kernel and export telemetry instead of -exp")
	traceOut := flag.String("trace-out", "results/trace.json", "Chrome trace_event output path (with -trace)")
	metricsOut := flag.String("metrics-out", "results/metrics.jsonl", "per-tick metrics JSONL output path (with -trace)")
	timelineOut := flag.String("timeline-out", "", "greppable text timeline output path (with -trace; empty disables)")
	traceMode := flag.String("trace-mode", "contiguitas", "kernel mode for the traced run (linux|contiguitas)")
	ckptEvery := flag.Uint64("checkpoint-every", 0, "take a crash-consistent checkpoint every N ticks during -trace (0 disables)")
	ckptOut := flag.String("checkpoint-out", "results/trace.snap", "rolling checkpoint path (with -checkpoint-every)")
	resume := flag.String("resume", "", "resume the -trace run from this checkpoint file")
	sweep := flag.Bool("pressure-sweep", false, "ramp footprint past machine capacity and verify graceful degradation instead of -exp")
	sweepMemMB := flag.Uint64("sweep-mem", 512, "pressure-sweep machine memory in MiB")
	sweepTicks := flag.Uint64("sweep-ticks", 600, "pressure-sweep length in ticks")
	sweepPeak := flag.Float64("sweep-peak", 2.0, "pressure-sweep peak demand as a multiple of machine memory")
	serve := flag.String("serve", "", "serve the live observability HTTP plane on this address (e.g. :8080 or :0; empty disables)")
	cli.Parse(flag.CommandLine, os.Args[1:])

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	cli.Check(err)
	defer stopProf()

	obsvHandle, err = obsv.MountCLI(*serve)
	cli.Check(err)
	defer obsvHandle.Close()

	if *sweep {
		// The sweep is a verification run: its error means the pressure
		// ladder failed to degrade gracefully.
		if err := pressureSweep(*sweepMemMB<<20, *sweepTicks, *sweepPeak, *seed); err != nil {
			cli.Verifyf("contigsim: %v", err)
		}
		return
	}

	if *trace {
		mode := kernel.ModeContiguitas
		if *traceMode == "linux" {
			mode = kernel.ModeLinux
		} else if *traceMode != "contiguitas" {
			cli.Usagef("contigsim: unknown -trace-mode %q", *traceMode)
		}
		if err := traceRun(mode, *memGB<<30, *ticks, *seed, *traceOut, *metricsOut, *timelineOut, *ckptEvery, *ckptOut, *resume); err != nil {
			cli.Runtimef("contigsim: %v", err)
		}
		return
	}

	cfg := contiguitas.DefaultExpConfig()
	cfg.MemBytes = *memGB << 30
	cfg.WarmupTicks = *ticks
	cfg.Seed = *seed

	run := map[string]func(){
		"fig2":      fig2,
		"fig3":      fig3,
		"fig10":     func() { fig10(cfg) },
		"fig11":     func() { fig11(cfg) },
		"fig12":     func() { fig12(cfg) },
		"fig13":     fig13,
		"sec52":     func() { fig11(cfg) }, // §5.2 is printed with Figure 11
		"sec53":     sec53,
		"tab1":      tab1,
		"ablations": func() { ablations(cfg) },
	}
	if *exp == "all" {
		for _, id := range []string{"tab1", "fig2", "fig3", "fig13", "sec53", "fig11", "fig12", "fig10", "ablations"} {
			run[id]()
		}
		return
	}
	f, ok := run[*exp]
	if !ok {
		cli.Usagef("contigsim: unknown experiment %q", *exp)
	}
	f()
}

func table() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func fig2() {
	fmt.Println("\n== Figure 2: memory capacity vs TLB coverage across generations ==")
	w := table()
	fmt.Fprintln(w, "gen\trel capacity\tTLB 4KB\tTLB 2MB\tTLB 1GB")
	for _, r := range contiguitas.Fig2() {
		fmt.Fprintf(w, "%s\t%.0fx\t%.3f%%\t%.1f%%\t%.0f%%\n",
			r.Name, r.RelCapacity, r.Coverage4K*100, r.Coverage2M*100, r.Coverage1G*100)
	}
	w.Flush()
}

func fig3() {
	fmt.Println("\n== Figure 3: page-walk cycles (% of total cycles) ==")
	w := table()
	fmt.Fprintln(w, "service\tpages\tdata%\tinstr%\ttotal%")
	for _, r := range contiguitas.Fig3() {
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%.1f\n",
			r.Service, r.PageSize, r.DataPct, r.InstrPct, r.DataPct+r.InstrPct)
	}
	w.Flush()
}

func fig10(cfg contiguitas.ExpConfig) {
	fmt.Println("\n== Figure 10: end-to-end performance (relative to Linux-Full) ==")
	w := table()
	fmt.Fprintln(w, "service\tlinux-full\tlinux-partial\tcontiguitas\tgain vs full\tgain vs partial\t1GB share\t1GB pages")
	for _, r := range contiguitas.Fig10(cfg) {
		full := 1.0
		partial := r.GainOverFull / r.GainOverPartial
		cont := r.GainOverFull
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t+%.1f%%\t+%.1f%%\t+%.1f%%\t%d\n",
			r.Service, full, partial, cont,
			(r.GainOverFull-1)*100, (r.GainOverPartial-1)*100, (r.Gain1G-1)*100,
			r.Huge1GPages)
	}
	w.Flush()
	fmt.Println("paper: Web +18% (full) / +9% (partial), 7.5% from 1GB pages; gains of 2-9% partial and 7-18% full across services")
}

func fig11(cfg contiguitas.ExpConfig) {
	fmt.Println("\n== Figure 11: unmovable 2MB pages (% of memory) + §5.2 internal fragmentation ==")
	w := table()
	fmt.Fprintln(w, "service\tlinux\tcontiguitas\tfree inside unmovable 2MB blocks")
	var lSum, cSum float64
	rows := contiguitas.Fig11(cfg)
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.1f%%\t%.1f%%\t%.1f%%\n", r.Service, r.LinuxPct, r.ContiguitasPct, r.InternalFragFree*100)
		lSum += r.LinuxPct
		cSum += r.ContiguitasPct
	}
	w.Flush()
	fmt.Printf("average: linux %.1f%% vs contiguitas %.1f%% (paper: 31%% vs 7%%; §5.2 free-inside ~22%%)\n",
		lSum/float64(len(rows)), cSum/float64(len(rows)))
}

func fig12(cfg contiguitas.ExpConfig) {
	fmt.Println("\n== Figure 12: potential contiguity after perfect compaction (% of memory) ==")
	w := table()
	fmt.Fprintln(w, "service\torder\tlinux\tcontiguitas")
	name := map[int]string{mem.Order2M: "2M", mem.Order32M: "32M", mem.Order1G: "1G"}
	for _, r := range contiguitas.Fig12(cfg) {
		fmt.Fprintf(w, "%s\t%s\t%.1f%%\t%.1f%%\n", r.Service, name[r.Order], r.Linux, r.Contig)
	}
	w.Flush()
}

func fig13() {
	fmt.Println("\n== Figure 13: page-unavailable cycles during migration ==")
	w := table()
	fmt.Fprintln(w, "victim cores\tlinux-real\tlinux-sim\tsim/real\tcontiguitas")
	for _, p := range contiguitas.Fig13() {
		fmt.Fprintf(w, "%d\t%d\t%d\t%+.1f%%\t%d\n",
			p.Victims, p.LinuxReal, p.LinuxSim,
			(float64(p.LinuxSim)/float64(p.LinuxReal)-1)*100, p.Contiguitas)
	}
	w.Flush()
	fmt.Println("paper: linear scaling for Linux, ~constant local invalidation for Contiguitas; sim within -6%..+10% of real")
}

func sec53() {
	fmt.Println("\n== §5.3: migration-rate impact on request serving ==")
	w := table()
	fmt.Fprintln(w, "app\tmode\trate/s\trequests\tthroughput loss")
	for _, r := range contiguitas.Sec53(4_000_000) {
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%d\t%.2f%%\n", r.App, r.Mode, r.Rate, r.Requests, r.LossPct)
	}
	w.Flush()
	fmt.Printf("memcached gain with 2MB pages: +%.1f%% (paper: ~7%%)\n",
		(contiguitas.MemcachedHugePageGain()-1)*100)

	s := contiguitas.Sizing()
	fmt.Println("\n== §5.3: Contiguitas-HW sizing & hardware cost ==")
	fmt.Printf("invalidation window: %.0f us; 4KB copy: %.0f us; per-entry rate: %.0f migrations/s\n",
		s.InvalidationWindowUs, s.CopyUs, s.MigrationsPerSecPerEntry)
	fmt.Printf("metadata table: %d entries/slice; area %.4f mm^2; %.4f nJ/access; leakage %.2f mW; %.3f%% of core\n",
		s.Entries, s.Area.AreaMM2(), s.Area.EnergyNJPerAccess(), s.Area.LeakageMW(),
		s.Area.FractionOfCore()*100)
}

func tab1() {
	p := hw.DefaultParams()
	fmt.Println("== Table 1: architectural parameters ==")
	w := table()
	fmt.Fprintf(w, "multicore chip\t%d 4-issue OoO cores, %d-entry ROB, %.0fGHz\n", p.Cores, p.ROBSize, p.ClockGHz)
	fmt.Fprintf(w, "L1 cache\t%dKB, %d-way, %d cycles RT\n", p.L1SizeKB, p.L1Ways, p.L1Latency)
	fmt.Fprintf(w, "L1 TLB\t%d entries, %d-way, %d cycles RT\n", p.L1TLBEntries, p.L1TLBWays, p.L1TLBLatency)
	fmt.Fprintf(w, "L2 TLB\t%d entries, %d-way, %d cycles RT\n", p.L2TLBEntries, p.L2TLBWays, p.L2TLBLatency)
	fmt.Fprintf(w, "page walk cache\t%d levels, %d entries/level, FA, %d cycles\n", p.PWCLevels, p.PWCEntries, p.PWCLatency)
	fmt.Fprintf(w, "L2 cache\t%dKB, %d-way, %d cycles RT\n", p.L2SizeKB, p.L2Ways, p.L2Latency)
	fmt.Fprintf(w, "L3 cache\t%dMB slice, %d-way, %d cycles RT\n", p.L3SliceKB/1024, p.L3Ways, p.L3Latency)
	fmt.Fprintf(w, "Contiguitas-HW\t%d entries, FA, %d cycle\n", p.ContigEntries, p.ContigLatency)
	fmt.Fprintf(w, "main memory\t%dGB, DDR4 3200, %d banks\n", p.MemGB, p.DRAMBanks)
	fmt.Fprintf(w, "INVLPG cost\t%d cycles (pipeline flush)\n", p.INVLPGCycles)
	w.Flush()
}

func ablations(cfg contiguitas.ExpConfig) {
	fmt.Println("\n== Ablations (DESIGN.md §5) ==")

	fmt.Println("\n-- placement bias (§3.2): long-lived allocations away from the boundary --")
	w := table()
	fmt.Fprintln(w, "bias\tshrinks\tshrink failures\tfinal unmovable region")
	for _, r := range core.AblationPlacementBias(cfg) {
		fmt.Fprintf(w, "%v\t%d\t%d\t%d MiB\n", r.Bias, r.Shrinks, r.ShrinkFails, r.FinalUnmovBytes>>20)
	}
	w.Flush()

	fmt.Println("\n-- fallback stealing: the Linux scatter mechanism --")
	w = table()
	fmt.Fprintln(w, "stealing\tunmovable 2MB blocks\tunmov alloc failures\tsteals (convert/pollute)")
	for _, r := range core.AblationFallbackStealing(cfg) {
		fmt.Fprintf(w, "%v\t%.1f%%\t%d\t%d/%d\n", r.Stealing, r.UnmovBlockPct, r.AllocFailures, r.StealsConvert, r.StealsPollute)
	}
	w.Flush()

	fmt.Println("\n-- Algorithm 1 coefficients: waste vs pressure --")
	coeffs := []resize.Coefficients{
		resize.DefaultCoefficients,
		{UnmovExpand: 0.5, MovExpand: 0.1, UnmovShrink: 0.001, MovShrink: 0.002},
		{UnmovExpand: 0.02, MovExpand: 0.005, UnmovShrink: 0.1, MovShrink: 0.2},
	}
	w = table()
	fmt.Fprintln(w, "c_ue/c_me/c_us/c_ms\tmean unmovable region\tunmov alloc failures\tmovable pressure")
	for _, r := range core.AblationResizeCoefficients(cfg, coeffs) {
		fmt.Fprintf(w, "%.3f/%.3f/%.3f/%.3f\t%d MiB\t%d\t%.2f%%\n",
			r.Coeff.UnmovExpand, r.Coeff.MovExpand, r.Coeff.UnmovShrink, r.Coeff.MovShrink,
			r.MeanUnmovBytes>>20, r.UnmovFailures, r.MovPressure)
	}
	w.Flush()

	fmt.Println("\n-- metadata-table capacity: concurrent migrations admitted (burst of 32) --")
	w = table()
	fmt.Fprintln(w, "entries/slice\taccepted\trejected (table full)")
	for _, r := range core.AblationTableEntries([]int{1, 4, 8, 16, 32, 64}, 32) {
		fmt.Fprintf(w, "%d\t%d\t%d\n", r.Entries, r.Accepted, r.RejectedFull)
	}
	w.Flush()

	fmt.Println("\n-- copy orchestration across LLC slices --")
	w = table()
	fmt.Fprintln(w, "orchestration\t4KB copy cycles")
	for _, r := range core.AblationSliceParallelism() {
		name := "chained handoff (paper)"
		if r.Parallel {
			name = "parallel slices"
		}
		fmt.Fprintf(w, "%s\t%d\n", name, r.Cycles)
	}
	w.Flush()
}
