// Command contigtrace records allocation traces from the workload
// generators and replays them against either memory-management design.
// A trace captured once replays bit-identically, which makes cross-
// design comparisons exact: the same allocation stream, two layouts.
//
//	contigtrace -record trace.bin -profile web -ticks 200  # capture
//	contigtrace -replay trace.bin -design linux            # replay
//	contigtrace -replay trace.bin -design contiguitas
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"contiguitas"
	"contiguitas/internal/cli"
	"contiguitas/internal/kernel"
	"contiguitas/internal/mem"
	"contiguitas/internal/obsv"
	"contiguitas/internal/telemetry"
	"contiguitas/internal/trace"
	"contiguitas/internal/workload"
)

// obsvHandle is the -serve plane (nil when the flag is off).
var obsvHandle *obsv.Handle

func main() {
	record := flag.String("record", "", "record a trace to this file")
	replay := flag.String("replay", "", "replay a trace from this file")
	profile := flag.String("profile", "web", "profile to record (web|cachea|cacheb|ci)")
	design := flag.String("design", "contiguitas", "design to replay against (linux|contiguitas)")
	memMB := flag.Uint64("mem", 512, "machine memory in MiB")
	ticks := flag.Uint64("ticks", 200, "ticks to record")
	seed := flag.Uint64("seed", 1, "seed")
	traceOut := flag.String("trace-out", "", "write a Chrome trace of the replayed kernel to this file (replay only)")
	metricsOut := flag.String("metrics-out", "", "write per-tick metrics JSONL of the replayed kernel to this file (replay only)")
	serve := flag.String("serve", "", "serve the live observability HTTP plane on this address (e.g. :8080 or :0; empty disables)")
	cli.Parse(flag.CommandLine, os.Args[1:])

	var err error
	obsvHandle, err = obsv.MountCLI(*serve)
	cli.Check(err)
	defer obsvHandle.Close()

	switch {
	case *record != "":
		if _, err := pickProfile(*profile); err != nil {
			cli.Usagef("contigtrace: %v", err)
		}
		if err := doRecord(*record, *profile, *memMB<<20, *ticks, *seed); err != nil {
			cli.Runtimef("contigtrace: %v", err)
		}
	case *replay != "":
		switch strings.ToLower(*design) {
		case "linux", "contiguitas":
		default:
			cli.Usagef("contigtrace: unknown design %q", *design)
		}
		if err := doReplay(*replay, *design, *memMB<<20, *traceOut, *metricsOut); err != nil {
			cli.Runtimef("contigtrace: %v", err)
		}
	default:
		flag.Usage()
		os.Exit(cli.CodeUsage)
	}
}

func pickProfile(name string) (contiguitas.Profile, error) {
	switch strings.ToLower(name) {
	case "web":
		return contiguitas.Web(), nil
	case "cachea":
		return contiguitas.CacheA(), nil
	case "cacheb":
		return contiguitas.CacheB(), nil
	case "ci":
		return contiguitas.CI(), nil
	}
	return contiguitas.Profile{}, fmt.Errorf("unknown profile %q", name)
}

func newKernel(design string, memBytes uint64) (*kernel.Kernel, error) {
	var d contiguitas.Design
	switch strings.ToLower(design) {
	case "linux":
		d = contiguitas.DesignLinux
	case "contiguitas":
		d = contiguitas.DesignContiguitas
	default:
		return nil, fmt.Errorf("unknown design %q", design)
	}
	mc := contiguitas.DefaultMachineConfig(d)
	mc.MemBytes = memBytes
	return contiguitas.NewMachine(mc).K, nil
}

// doRecord attaches a trace recorder to a kernel's event sink and runs
// the real workload generator against it, so the captured trace is the
// authentic allocation stream of the profile.
func doRecord(path, profileName string, memBytes, ticks, seed uint64) error {
	p, err := pickProfile(profileName)
	if err != nil {
		return err
	}
	k, err := newKernel("contiguitas", memBytes)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	rec := trace.Attach(k, w)
	r := workload.NewRunner(k, p, seed)
	r.Run(ticks)
	if rec.Err() != nil {
		return rec.Err()
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("recorded %d events over %d ticks of %s to %s\n",
		w.Events(), ticks, p.Name, path)
	return nil
}

func doReplay(path, design string, memBytes uint64, traceOut, metricsOut string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	k, err := newKernel(design, memBytes)
	if err != nil {
		return err
	}
	// Instrument the replayed kernel on request: the same recorded
	// allocation stream then yields a per-design timeline and metric
	// series, making cross-design comparisons visual. -serve forces the
	// instrumentation on so the plane has something to stream.
	var tp *telemetry.Ring
	var sampler *telemetry.Sampler
	if traceOut != "" || metricsOut != "" || obsvHandle != nil {
		tp = telemetry.NewRing(1 << 15)
		k.SetTracer(tp)
		sampler = k.AttachSampler(1 << 12)
	}
	pub := obsvHandle.Attach(k.Metrics(), tp)
	pub.Publish(0)
	st, err := trace.Replay(k, r)
	if err != nil {
		return err
	}
	pub.Publish(st.Ticks)
	// Both artifacts are attempted even if one fails; an empty path
	// skips that artifact.
	if err := telemetry.ExportAll(
		telemetry.ChromeTraceArtifact(traceOut, tp, sampler),
		telemetry.MetricsJSONLArtifact(metricsOut, sampler),
	); err != nil {
		return err
	}
	if traceOut != "" {
		fmt.Printf("trace: %s (%d events, %d overwritten)\n", traceOut, tp.Len(), tp.Overwritten())
	}
	if metricsOut != "" {
		fmt.Printf("metrics: %s (%d rows)\n", metricsOut, sampler.Len())
	}
	scan := k.PM().Scan(mem.ScanOrders)
	fmt.Printf("replayed %d events (%d ticks, %d failed allocations) on %s\n",
		st.Events, st.Ticks, st.AllocFailed, design)
	fmt.Printf("unmovable 2MB blocks: %.1f%% of memory\n",
		scan.UnmovableBlockFraction(mem.Order2M)*100)
	fmt.Printf("free 2MB contiguity:  %.1f%% of free memory\n",
		scan.FreeContigFraction(mem.Order2M)*100)
	fmt.Printf("potential 32MB:       %.1f%% of memory\n",
		scan.PotentialFraction(mem.Order32M)*100)
	return nil
}
