// The -soak gate: the fleet study runs as a supervised sharded campaign
// under injected shard kills and checkpoint-write failures, and the
// merged result must come out byte-identical to an unfaulted same-seed
// run with zero quarantined shards. With -kill-after the process itself
// dies mid-campaign (simulating a machine crash between atomic state
// writes), and a second invocation with -resume finishes the study from
// the on-disk manifest and shard checkpoints.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"contiguitas/internal/cli"
	"contiguitas/internal/fleet"
	"contiguitas/internal/snapshot"
	"contiguitas/internal/supervise"
	"contiguitas/internal/telemetry"
)

type soakOptions struct {
	dir          string // state directory for a fresh faulted campaign
	resumeDir    string // non-empty: resume a killed campaign from here
	killEvery    uint64
	ckptFailProb float64
	killAfter    uint64
	minKills     uint64
}

// soakMaxAttempts is generous: an every-3rd-server kill schedule nets
// roughly one crash per two servers of progress, so a 16-server shard
// legitimately burns ~10 attempts before checkpoint faults are even
// counted. Quarantine must stay reserved for shards that stop making
// progress, and a false quarantine fails the gate.
const soakMaxAttempts = 64

// Soak backoff is compressed: the gate wants many kill/recover cycles
// per second, not production pacing.
const (
	soakBackoffBase = time.Millisecond
	soakBackoffCap  = 50 * time.Millisecond
)

func runSoak(cfg fleet.Config, opt soakOptions) {
	if opt.resumeDir != "" {
		resumeSoak(cfg, opt)
		return
	}

	fmt.Printf("soak: %d servers of %d MiB, seed %d, kill-every %d, ckpt-fail %.0f%%\n",
		cfg.Servers, cfg.MemBytes>>20, cfg.Seed, opt.killEvery, opt.ckptFailProb*100)

	// The oracle: same seed, no faults, no supervision stress.
	want := referenceBytes(cfg)

	ring := telemetry.NewRing(1 << 12)
	obsvSinkRing(ring)
	reg := obsvRegistry(telemetry.NewRegistry())
	var crashes uint64
	scfg := fleet.SupervisedConfig{
		Fleet:       cfg,
		MaxAttempts: soakMaxAttempts,
		BackoffBase: soakBackoffBase,
		BackoffCap:  soakBackoffCap,
		Heartbeat:   30 * time.Second,
		Dir:         opt.dir,
		Faults: fleet.FaultPlan{
			CrashEveryN:        opt.killEvery,
			CheckpointFailProb: opt.ckptFailProb,
		},
		Trace:    ring,
		Metrics:  reg,
		Progress: obsvProgress("soak"),
		OnEvent: func(ev supervise.Event) {
			obsvPumpNow()
			if ev.Kind != supervise.EventCrash {
				return
			}
			crashes++
			if opt.killAfter > 0 && crashes == opt.killAfter {
				// Die like a machine, not like a program: no cleanup, no
				// final manifest write. The atomic rename discipline must
				// make whatever is on disk resumable.
				fmt.Printf("killed process mid-campaign after %d shard crashes (resume with -soak -resume %s)\n",
					crashes, opt.dir)
				os.Exit(cli.CodeOK)
			}
		},
	}
	if opt.killAfter > 0 && opt.dir == "" {
		cli.Usagef("fleetscan: -kill-after needs -state-dir (a killed in-memory campaign has nothing to resume)")
	}

	res, err := fleet.RunSupervised(context.Background(), scfg)
	if err != nil {
		cli.Runtimef("fleetscan: soak: %v", err)
	}
	obsvPublish()
	report(res, reg)

	if res.KillsInjected < opt.minKills {
		cli.Verifyf("fleetscan: soak injected %d shard kills, need >= %d — the fault schedule did not stress the supervisor",
			res.KillsInjected, opt.minKills)
	}
	verifyIdentical(res, want)
	fmt.Printf("PASS: merged CDFs byte-identical to unfaulted same-seed run (%d kills, %d checkpoint faults, %d crashes survived)\n",
		res.KillsInjected, res.CheckpointFaultsInjected, res.Report.Crashes)
}

// resumeSoak finishes a killed campaign from its state directory. The
// resumed process runs unfaulted — the faults died with the process that
// armed them — and the completed study must still be byte-identical to
// the unfaulted oracle, proving the on-disk checkpoints carried exact
// state across the kill.
func resumeSoak(cfg fleet.Config, opt soakOptions) {
	fmt.Printf("soak resume: %d servers from %s\n", cfg.Servers, opt.resumeDir)
	reg := obsvRegistry(telemetry.NewRegistry())
	res, err := fleet.RunSupervised(context.Background(), fleet.SupervisedConfig{
		Fleet:       cfg,
		MaxAttempts: soakMaxAttempts,
		BackoffBase: soakBackoffBase,
		BackoffCap:  soakBackoffCap,
		Heartbeat:   30 * time.Second,
		Dir:         opt.resumeDir,
		Resume:      true,
		Metrics:     reg,
		Progress:    obsvProgress("soak-resume"),
		OnEvent:     obsvPump(),
	})
	if err != nil {
		if errors.Is(err, snapshot.ErrNoManifest) {
			// Not a campaign state directory at all: a missing or empty
			// manifest is a bad -resume argument, not a verification
			// verdict — and silently starting a fresh campaign would hide
			// the typo that got us here.
			cli.Usagef("fleetscan: resume: %v", err)
		}
		// Everything else the resume path can report is an integrity
		// verdict: tampered manifest, mismatched checkpoint, wrong
		// campaign configuration.
		cli.Verifyf("fleetscan: resume: %v", err)
	}
	obsvPublish()
	report(res, reg)
	verifyIdentical(res, referenceBytes(cfg))
	var priorAttempts uint64
	for _, s := range res.Manifest.Shards {
		priorAttempts += s.Attempts
	}
	fmt.Printf("PASS: resumed campaign byte-identical to unfaulted same-seed run (%d attempts across process lifetimes)\n",
		priorAttempts)
}

func report(res *fleet.CampaignResult, reg *telemetry.Registry) {
	fmt.Printf("campaign: %s\n", res.Report)
	fmt.Printf("telemetry: crashes=%d resumes=%d quarantines=%d restart-attempts(max)=%d\n",
		reg.Counter("shard_crashes").Value(),
		reg.Counter("shard_resumes").Value(),
		reg.Counter("shard_quarantines").Value(),
		reg.Histogram("shard_restart").Max())
	for _, st := range res.Report.Shards {
		for _, c := range st.Crashes {
			fmt.Printf("  shard %d attempt %d died: %s: %s\n", st.Shard, c.Attempt, c.Kind, c.Reason)
		}
	}
}

func verifyIdentical(res *fleet.CampaignResult, want []byte) {
	if res.Report.Quarantined > 0 {
		cli.Verifyf("fleetscan: soak quarantined %d shard(s) %v — supervision failed to recover them",
			res.Report.Quarantined, res.MissingShards)
	}
	if !res.Report.Complete {
		cli.Verifyf("fleetscan: soak incomplete: %s (missing shards %v)", res.Report, res.MissingShards)
	}
	got := studyBytes(res.Study)
	if !bytes.Equal(got, want) {
		cli.Verifyf("fleetscan: soak diverged: supervised study (%d bytes) != unfaulted study (%d bytes) — crashes or retries leaked into results",
			len(got), len(want))
	}
}

// referenceBytes runs the unfaulted oracle study and serialises it.
func referenceBytes(cfg fleet.Config) []byte {
	res, err := fleet.RunSupervised(context.Background(), fleet.SupervisedConfig{
		Fleet:    cfg,
		Progress: obsvProgress("reference"),
		OnEvent:  obsvPump(),
	})
	if err != nil {
		cli.Runtimef("fleetscan: reference run: %v", err)
	}
	if !res.Report.Complete {
		cli.Verifyf("fleetscan: reference run incomplete with no faults armed: %s", res.Report)
	}
	return studyBytes(res.Study)
}

// studyBytes is fleet.CanonicalBytes — the shared canonical identity
// the service layer's result files use too.
func studyBytes(s *fleet.Study) []byte { return fleet.CanonicalBytes(s) }
