// The -serve wiring: fleetscan mounts the obsv HTTP plane over
// whichever campaigns the invocation runs. The plane is a package-level
// nil-safe handle so the soak/sweep/plain paths stay free of plumbing
// when observability is off — every helper is a no-op on a nil plane.
package main

import (
	"fmt"
	"sync/atomic"

	"contiguitas/internal/cli"
	"contiguitas/internal/fleet"
	"contiguitas/internal/obsv"
	"contiguitas/internal/supervise"
	"contiguitas/internal/telemetry"
)

// plane is non-nil iff -serve was given.
var plane *obsvPlane

type obsvPlane struct {
	srv   *obsv.Server
	board *obsv.Board
	bus   *obsv.EventBus
	pub   *telemetry.Publisher
	// seq stamps snapshots; fleet campaigns have no global tick, so the
	// pump sequence number stands in.
	seq atomic.Uint64
}

// startObsv brings the plane up on addr and prints the bound address
// (CI parses this line to find the ephemeral port).
func startObsv(addr string) {
	p := &obsvPlane{
		board: obsv.NewBoard(),
		bus:   obsv.NewEventBus(),
		pub:   telemetry.NewPublisher(telemetry.NewRegistry()),
	}
	srv, err := obsv.Start(obsv.Options{
		Addr:      addr,
		Publisher: p.pub,
		Board:     p.board,
		Bus:       p.bus,
	})
	cli.Check(err)
	p.srv = srv
	// Baseline snapshot so /metrics answers before the first campaign
	// event (the registry is still owned by this goroutine here).
	p.pub.Publish(0)
	plane = p
	fmt.Printf("obsv: serving on %s\n", srv.URL())
}

// stopObsv quiesces and shuts the plane down (no-op when -serve unset).
func stopObsv() {
	if plane != nil {
		plane.srv.Close()
	}
}

// obsvRegistry returns the plane's registry, or fallback when the plane
// is down. Campaign paths use this so supervision metrics land where
// /metrics scrapes.
func obsvRegistry(fallback *telemetry.Registry) *telemetry.Registry {
	if plane == nil {
		return fallback
	}
	return plane.pub.Registry()
}

// obsvProgress registers a campaign on the board and returns it as the
// fleet progress sink — a true nil interface when the plane is down, so
// callers can assign it to SupervisedConfig.Progress unconditionally.
func obsvProgress(name string) fleet.ProgressSink {
	if plane == nil {
		return nil
	}
	return plane.board.Register(name)
}

// obsvSinkRing tees ring records into the /events bus.
func obsvSinkRing(ring *telemetry.Ring) {
	if plane != nil && ring != nil {
		ring.SetSink(plane.bus.Sink())
	}
}

// obsvPumpNow pumps the publisher if a scrape is waiting. Only call
// from the goroutine that currently owns the registry's writers (the
// supervisor goroutine during a campaign).
func obsvPumpNow() {
	if plane != nil {
		plane.pub.Pump(plane.seq.Add(1))
	}
}

// obsvPump is a supervision event hook that pumps the publisher from
// the supervisor goroutine — the registry's writer — so /metrics
// scrapes see fresh counters while a campaign runs. Returns nil when
// the plane is down (OnEvent accepts nil).
func obsvPump() func(supervise.Event) {
	if plane == nil {
		return nil
	}
	return func(supervise.Event) { obsvPumpNow() }
}

// obsvPublish force-publishes a snapshot. Only call from the goroutine
// that owns the registry's writers (e.g. after a campaign's supervisor
// has returned).
func obsvPublish() {
	if plane != nil {
		plane.pub.Publish(plane.seq.Add(1))
	}
}
