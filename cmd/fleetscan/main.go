// Command fleetscan runs the paper's §2 fleet study: it samples many
// simulated servers running randomized workload mixes for randomized
// uptimes, scans each server's physical memory, and prints
//
//   - Figure 4: the CDF of free-memory contiguity at 2MB/4MB/32MB/1GB,
//   - Figure 5: the CDF of unmovable blocks at the same granularities,
//   - Figure 6: the breakdown of unmovable allocations by source, and
//   - the §2.4 uptime-versus-contiguity correlation.
//
// The study runs as a supervised sharded campaign (internal/supervise):
//
//	fleetscan -soak -kill-every 3            # kill-heavy determinism gate
//	fleetscan -soak -state-dir d -kill-after 5   # die mid-campaign...
//	fleetscan -soak -resume d                    # ...and finish from disk
//
// -soak injects shard kills and checkpoint-write failures, then fails
// (exit 2) unless the supervised study is byte-identical to an unfaulted
// same-seed run with zero quarantined shards.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"contiguitas"
	"contiguitas/internal/cli"
	"contiguitas/internal/fleet"
	"contiguitas/internal/mem"
	"contiguitas/internal/prof"
	"contiguitas/internal/resultcache"
)

func main() {
	servers := flag.Int("servers", 200, "number of servers to sample")
	memMB := flag.Uint64("mem", 1024, "server memory in MiB")
	minTicks := flag.Uint64("min-uptime", 60, "minimum uptime in ticks")
	maxTicks := flag.Uint64("max-uptime", 600, "maximum uptime in ticks")
	seed := flag.Uint64("seed", 1, "study seed")
	design := flag.String("design", "linux", "memory-management design (linux|contiguitas)")
	shards := flag.Int("shards", 0, "supervised campaign shards (0 picks the default for -servers)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	trace := flag.Bool("trace", false, "also run one instrumented representative server and export its telemetry")
	traceOut := flag.String("trace-out", "results/fleet-trace.json", "Chrome trace_event output path (with -trace)")
	metricsOut := flag.String("metrics-out", "results/fleet-metrics.jsonl", "per-tick metrics JSONL output path (with -trace)")
	ckptEvery := flag.Uint64("checkpoint-every", 0, "checkpoint the -trace representative server every N ticks (0 disables)")
	ckptOut := flag.String("checkpoint-out", "results/fleet.snap", "rolling checkpoint path (with -checkpoint-every)")
	resume := flag.String("resume", "", "resume path: a representative-server snapshot with -trace, or a campaign state directory with -soak")
	soak := flag.Bool("soak", false, "run the kill-heavy supervision soak instead of printing the study")
	stateDir := flag.String("state-dir", "", "campaign state directory for -soak (manifest + shard checkpoints; empty keeps state in memory)")
	killEvery := flag.Uint64("kill-every", 3, "with -soak, kill a shard on every Nth server it completes (>= 2; 0 disables)")
	ckptFailProb := flag.Float64("ckpt-fail-prob", 0.2, "with -soak, probability an injected fault fails a shard checkpoint write")
	killAfter := flag.Uint64("kill-after", 0, "with -soak, exit the whole process after this many shard crashes (0 disables; resume with -soak -resume <dir>)")
	minKills := flag.Uint64("min-kills", 5, "with -soak, fail unless at least this many shard kills were injected")
	sweep := flag.Bool("sweep", false, "run the design/mem/jitter cross-product grid instead of one study")
	sweepDesigns := flag.String("sweep-designs", "linux,contiguitas", "comma-separated designs for -sweep")
	sweepMems := flag.String("sweep-mems", "512,1024", "comma-separated server memory sizes in MiB for -sweep")
	sweepJitters := flag.String("sweep-jitters", "0,0.2", "comma-separated jitter fractions for -sweep")
	sweepOut := flag.String("sweep-out", "", "write the canonical sweep results file here (byte-identical across warm/cold runs)")
	cacheDir := flag.String("cache-dir", "", "content-addressed shard result cache directory (empty disables)")
	noCache := flag.Bool("no-cache", false, "ignore -cache-dir and run uncached")
	serve := flag.String("serve", "", "serve the live observability HTTP plane on this address (e.g. :8080 or :0; empty disables)")
	cli.Parse(flag.CommandLine, os.Args[1:])

	if *resume != "" && !*soak && !*trace {
		// A -resume with nothing to resume into must not silently run a
		// fresh study — that reads as "resumed fine" to the caller.
		cli.Usagef("fleetscan: -resume needs -soak (campaign state directory) or -trace (representative-server snapshot)")
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	cli.Check(err)
	defer stopProf()

	if *serve != "" {
		startObsv(*serve)
		defer stopObsv()
	}

	cfg := contiguitas.DefaultFleetConfig()
	cfg.Servers = *servers
	cfg.MemBytes = *memMB << 20
	cfg.TicksMin = *minTicks
	cfg.TicksMax = *maxTicks
	cfg.Seed = *seed
	cfg.Shards = *shards
	cfg.Design = parseDesignName(*design)

	// The shard result cache: plain runs and sweeps share it; -no-cache
	// wins over -cache-dir so scripts can flip one switch for A/B runs.
	var cache resultcache.Cache
	if *cacheDir != "" && !*noCache {
		cache = resultcache.NewDir(*cacheDir, fleet.CacheSchemaVersion)
	}

	if *sweep {
		runSweep(cfg, sweepOptions{
			designs: splitCSV(*sweepDesigns, "-sweep-designs"),
			memsMB:  parseMems(*sweepMems),
			jitters: parseJitters(*sweepJitters),
			out:     *sweepOut,
			cache:   cache,
		})
		return
	}

	if *soak {
		if *killEvery == 1 {
			cli.Usagef("fleetscan: -kill-every must be >= 2 (a shard killed on every server can never progress)")
		}
		runSoak(cfg, soakOptions{
			dir:          *stateDir,
			resumeDir:    *resume,
			killEvery:    *killEvery,
			ckptFailProb: *ckptFailProb,
			killAfter:    *killAfter,
			minKills:     *minKills,
		})
		return
	}

	fmt.Printf("scanning %d servers of %d MiB (%s design)...\n", cfg.Servers, *memMB, *design)
	var s *contiguitas.FleetStudy
	if cache != nil {
		res := runCampaign("study", cfg, cache)
		s = res.Study
		fmt.Println(cacheSummary(res.CacheHits, res.CacheMisses, res.CacheRejects))
	} else {
		s = contiguitas.RunFleet(cfg)
		// State the cache mode explicitly so a -no-cache run is
		// unambiguous next to a cached run's hits/misses line.
		fmt.Println("cache: disabled")
	}

	if *trace {
		if err := traceRepresentative(cfg, *maxTicks, *traceOut, *metricsOut, *ckptEvery, *ckptOut, *resume); err != nil {
			cli.Runtimef("fleetscan: %v", err)
		}
	}

	orders := []int{mem.Order2M, mem.Order4M, mem.Order32M, mem.Order1G}
	names := map[int]string{mem.Order2M: "2MB", mem.Order4M: "4MB", mem.Order32M: "32MB", mem.Order1G: "1GB"}

	fmt.Println("\n== Figure 4: CDF of servers vs contiguity (fraction of free memory) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "contig >=\t")
	for _, o := range orders {
		fmt.Fprintf(w, "%s\t", names[o])
	}
	fmt.Fprintln(w)
	for _, x := range []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30} {
		fmt.Fprintf(w, "%.0f%%\t", x*100)
		for _, o := range orders {
			// CDF of servers whose contiguity is at most x.
			fmt.Fprintf(w, "%.2f\t", s.ContigCDF(o).At(x))
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Printf("servers with zero 2MB contiguity: %.0f%% (paper: 23%%)\n", s.NoContigFraction(mem.Order2M)*100)
	fmt.Printf("servers with zero 1GB contiguity: %.0f%% (paper: ~100%%)\n", s.NoContigFraction(mem.Order1G)*100)

	fmt.Println("\n== Figure 5: CDF of servers vs unmovable blocks (fraction of memory) ==")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "unmovable <=\t")
	for _, o := range orders {
		fmt.Fprintf(w, "%s\t", names[o])
	}
	fmt.Fprintln(w)
	for _, x := range []float64{0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0} {
		fmt.Fprintf(w, "%.0f%%\t", x*100)
		for _, o := range orders {
			fmt.Fprintf(w, "%.2f\t", s.UnmovCDF(o).At(x))
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Printf("median unmovable 2MB blocks: %.0f%% of memory (paper: 34%%)\n",
		s.MedianUnmovBlockFrac(mem.Order2M)*100)
	fmt.Printf("median unmovable 4KB frames: %.1f%% of memory (paper: 7.6%%)\n",
		s.MedianUnmovFrameFrac()*100)

	fmt.Println("\n== Figure 6: sources of unmovable allocations ==")
	src := s.SourceBreakdown()
	for _, c := range []mem.Source{mem.SrcNetworking, mem.SrcSlab, mem.SrcFilesystem, mem.SrcPageTable, mem.SrcOther} {
		fmt.Printf("  %-12s %5.1f%%\n", c, src[c]*100)
	}
	fmt.Println("paper: networking 73%, slab 12%, filesystems, page tables, others ~4%")

	fmt.Printf("\n== §2.4: uptime vs free 2MB blocks: Pearson r = %+.4f (paper: 0.00286) ==\n",
		s.UptimeCorrelation())

	fmt.Println("\n== §2.4: a young server's first 'hour' (fresh boot, Cache A) ==")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ticks\tfree 2MB contiguity\tunmovable 2MB blocks")
	tsCfg := cfg
	tsCfg.Seed = cfg.Seed + 99
	for _, pt := range contiguitas.YoungServerSeries(tsCfg, contiguitas.CacheA(), 6, 20) {
		fmt.Fprintf(w, "%d\t%.2f\t%.2f\n", pt.Tick, pt.FreeContig2M, pt.UnmovBlock2M)
	}
	w.Flush()
	fmt.Println("paper: servers can get highly fragmented within the first hour of running workloads")
}
