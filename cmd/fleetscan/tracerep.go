package main

import (
	"fmt"

	"contiguitas"
	"contiguitas/internal/core"
	"contiguitas/internal/snapshot"
	"contiguitas/internal/telemetry"
	"contiguitas/internal/workload"
)

// traceRepresentative boots one server with the study's design and
// memory size, runs it for the study's maximum uptime under the Web
// profile with full telemetry attached, and exports the Chrome trace
// plus the per-tick metrics JSONL. The fleet study itself stays
// uninstrumented — its servers are too many and too short-lived for a
// per-server timeline to mean anything.
//
// With ckptEvery > 0 the representative server is checkpointed to
// ckptOut every ckptEvery ticks; with resume set it restores from that
// file and continues to the study's maximum uptime.
func traceRepresentative(cfg contiguitas.FleetConfig, ticks uint64, traceOut, metricsOut string, ckptEvery uint64, ckptOut, resume string) error {
	mc := core.DefaultMachineConfig(cfg.Design)
	mc.MemBytes = cfg.MemBytes
	mc.Seed = cfg.Seed

	cp := &snapshot.Checkpointer{Path: ckptOut}
	var m *core.Machine
	var r *workload.Runner
	startTick := uint64(0)
	if resume != "" {
		e, err := snapshot.Read(resume)
		if err != nil {
			return err
		}
		m, err = core.RestoreMachine(mc, e.Machine.Kernel)
		if err != nil {
			return fmt.Errorf("fleetscan: resume: %w", err)
		}
		r, err = workload.RestoreRunner(m.K, workload.Web(), cfg.Seed, e.Machine.Runner)
		if err != nil {
			return fmt.Errorf("fleetscan: resume: %w", err)
		}
		startTick = e.Tick
		cp.SetChain(e.Seq+1, e.ChainHash)
		fmt.Printf("resumed representative server from %s: seq=%d tick=%d state=%016x\n",
			resume, e.Seq, e.Tick, e.StateHash)
	} else {
		m = core.NewMachine(mc)
		r = m.Attach(workload.Web(), cfg.Seed)
	}

	tp := telemetry.NewRing(1 << 15)
	m.K.SetTracer(tp)
	sampler := m.K.AttachSampler(int(ticks) + 1)
	obsvSinkRing(tp)
	var pub *telemetry.Publisher
	if plane != nil {
		pub = telemetry.NewPublisher(m.K.Metrics())
		plane.srv.SetPublisher(pub)
		pub.Publish(startTick)
	}

	for tick := startTick; tick < ticks; tick++ {
		r.Step()
		pub.Pump(tick)
		if ckptEvery > 0 && (tick+1)%ckptEvery == 0 {
			if _, err := cp.Take(tick+1, m.K, r, nil); err != nil {
				return fmt.Errorf("fleetscan: checkpoint: %w", err)
			}
		}
	}
	pub.Publish(ticks)

	// Both artifacts flush even if one fails — a bad trace path must not
	// swallow the metrics file.
	if err := telemetry.ExportAll(
		telemetry.ChromeTraceArtifact(traceOut, tp, sampler),
		telemetry.MetricsJSONLArtifact(metricsOut, sampler),
	); err != nil {
		return fmt.Errorf("fleetscan: telemetry export: %w", err)
	}
	fmt.Printf("instrumented representative server: %s (%d events, %d overwritten), %s (%d rows)\n",
		traceOut, tp.Len(), tp.Overwritten(), metricsOut, sampler.Len())
	if last := cp.Last(); last != nil {
		fmt.Printf("last snapshot: %s seq=%d tick=%d state=%016x chain=%016x\n",
			ckptOut, last.Seq, last.Tick, last.StateHash, last.ChainHash)
	}
	return nil
}
