// The -sweep grid mode: run the Fig. 4/5 CDF pipeline over the
// cross-product of designs × memory sizes × jitter levels, optionally
// through the content-addressed shard result cache (-cache-dir), and
// emit a canonical results file whose bytes depend only on the studies —
// so a warm-cache sweep is verifiably identical to a cold one
// (cmp two -sweep-out files), not just "close".
package main

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"contiguitas"
	"contiguitas/internal/cli"
	"contiguitas/internal/fleet"
	"contiguitas/internal/mem"
	"contiguitas/internal/resultcache"
	"contiguitas/internal/telemetry"
	"contiguitas/internal/vfs"
)

type sweepOptions struct {
	designs []string
	memsMB  []uint64
	jitters []float64
	out     string
	cache   resultcache.Cache
}

// Fixed CDF probe points: the Fig. 4 contiguity thresholds and the
// Fig. 5 unmovable-block thresholds main() prints, frozen here so the
// canonical sweep file is stable across cosmetic table changes.
var (
	sweepContigX = []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30}
	sweepUnmovX  = []float64{0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0}
	sweepOrders  = []int{mem.Order2M, mem.Order4M, mem.Order32M, mem.Order1G}
)

func parseDesignName(name string) contiguitas.Design {
	switch name {
	case "linux":
		return contiguitas.DesignLinux
	case "contiguitas":
		return contiguitas.DesignContiguitas
	default:
		cli.Usagef("fleetscan: unknown design %q", name)
		panic("unreachable")
	}
}

func splitCSV(s, flagName string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		cli.Usagef("fleetscan: %s needs at least one value", flagName)
	}
	return out
}

func parseMems(s string) []uint64 {
	var out []uint64
	for _, f := range splitCSV(s, "-sweep-mems") {
		v, err := strconv.ParseUint(f, 10, 64)
		if err != nil || v == 0 {
			cli.Usagef("fleetscan: -sweep-mems: bad MiB value %q", f)
		}
		out = append(out, v)
	}
	return out
}

func parseJitters(s string) []float64 {
	var out []float64
	for _, f := range splitCSV(s, "-sweep-jitters") {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v < 0 || v >= 1 {
			cli.Usagef("fleetscan: -sweep-jitters: bad fraction %q (want [0, 1))", f)
		}
		out = append(out, v)
	}
	return out
}

// runCampaign executes one configuration through the supervised engine
// (the cache only attaches there), failing hard on setup errors and
// incomplete unfaulted runs. name labels the campaign on the -serve
// board.
func runCampaign(name string, cfg fleet.Config, cache resultcache.Cache) *fleet.CampaignResult {
	scfg := fleet.SupervisedConfig{
		Fleet:    cfg,
		Cache:    cache,
		Metrics:  obsvRegistry(nil),
		Progress: obsvProgress(name),
		OnEvent:  obsvPump(),
	}
	if plane != nil {
		ring := telemetry.NewRing(1 << 12)
		obsvSinkRing(ring)
		scfg.Trace = ring
	}
	res, err := fleet.RunSupervised(context.Background(), scfg)
	if err != nil {
		cli.Runtimef("fleetscan: %v", err)
	}
	obsvPublish()
	if !res.Report.Complete {
		cli.Verifyf("fleetscan: unfaulted campaign incomplete: %s", res.Report)
	}
	return res
}

// cacheSummary is the one-line tally the CI cache-correctness job
// greps; keep the key=value shape stable.
func cacheSummary(hits, misses, rejects uint64) string {
	return fmt.Sprintf("cache: hits=%d misses=%d rejects=%d", hits, misses, rejects)
}

func runSweep(base fleet.Config, opt sweepOptions) {
	cells := len(opt.designs) * len(opt.memsMB) * len(opt.jitters)
	fmt.Printf("sweep: %d cells (%d designs x %d mems x %d jitters), %d servers each\n",
		cells, len(opt.designs), len(opt.memsMB), len(opt.jitters), base.Servers)

	var canon bytes.Buffer
	fmt.Fprintf(&canon, "# fleetscan sweep v1 servers=%d seed=%d shards=%d min=%d max=%d\n",
		base.Servers, base.Seed, base.Shards, base.TicksMin, base.TicksMax)

	var hits, misses, rejects uint64
	for _, dname := range opt.designs {
		for _, mib := range opt.memsMB {
			for _, jit := range opt.jitters {
				cfg := base
				cfg.Design = parseDesignName(dname)
				cfg.MemBytes = mib << 20
				cfg.JitterFrac = jit
				res := runCampaign(fmt.Sprintf("%s-%dMiB-j%g", dname, mib, jit), cfg, opt.cache)
				hits += res.CacheHits
				misses += res.CacheMisses
				rejects += res.CacheRejects
				writeCell(&canon, dname, mib, jit, res.Study)
				fmt.Printf("  design=%-12s mem=%5d MiB jitter=%.2f  zero-2MB-contig=%3.0f%%  median-unmov-2MB=%3.0f%%\n",
					dname, mib, jit,
					res.Study.NoContigFraction(mem.Order2M)*100,
					res.Study.MedianUnmovBlockFrac(mem.Order2M)*100)
			}
		}
	}

	if opt.cache != nil {
		fmt.Println(cacheSummary(hits, misses, rejects))
	} else {
		fmt.Println("cache: disabled")
	}

	if opt.out != "" {
		// Durable write: a sweep interrupted mid-write must never leave a
		// torn canonical file for a later diff to chase.
		cli.Check(vfs.WriteFileDurable(vfs.Active(), opt.out, canon.Bytes()))
		fmt.Printf("wrote %d cells (%d canonical bytes) to %s\n", cells, canon.Len(), opt.out)
	}
}

// writeCell appends one grid cell to the canonical sweep file: the cell
// coordinates, the FNV digest of the study's full canonical byte
// serialisation (every sample field — the strongest equality check we
// have), and the Fig. 4 / Fig. 5 CDF values at the frozen probe points.
func writeCell(buf *bytes.Buffer, design string, mib uint64, jitter float64, s *fleet.Study) {
	fmt.Fprintf(buf, "cell design=%s mem_mib=%d jitter=%g\n", design, mib, jitter)
	h := fnv.New64a()
	h.Write(studyBytes(s))
	fmt.Fprintf(buf, "study samples=%d digest=%016x\n", len(s.Samples), h.Sum64())
	for _, o := range sweepOrders {
		fmt.Fprintf(buf, "fig4 order=%d", o)
		for _, x := range sweepContigX {
			fmt.Fprintf(buf, " %.6f", s.ContigCDF(o).At(x))
		}
		fmt.Fprintln(buf)
	}
	for _, o := range sweepOrders {
		fmt.Fprintf(buf, "fig5 order=%d", o)
		for _, x := range sweepUnmovX {
			fmt.Fprintf(buf, " %.6f", s.UnmovCDF(o).At(x))
		}
		fmt.Fprintln(buf)
	}
}
