// Command obsvcheck probes a live observability plane (a CLI run with
// -serve) and verifies it end to end — the CI side of the obsv contract:
//
//  1. /healthz answers ok within -timeout,
//  2. /metrics parses under the Prometheus text-exposition linter, and
//     counter values never decrease across successive scrapes,
//  3. /events delivers at least one well-formed SSE frame (skippable
//     with -events=false for runs that finish before a stream attaches),
//  4. /campaigns reaches at least -campaigns registered campaigns, all
//     ended, with every shard table consistent (done <= total, finished
//     campaigns at 100%).
//
// Exit codes follow the repository convention: 2 means the plane
// answered but violated the contract; 3 means it never answered.
//
//	obsvcheck -addr http://127.0.0.1:8080 -campaigns 2
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"contiguitas/internal/cli"
	"contiguitas/internal/obsv"
)

func main() {
	addr := flag.String("addr", "", "base URL of the plane under test (e.g. http://127.0.0.1:8080)")
	campaigns := flag.Int("campaigns", 1, "wait until at least this many campaigns are registered and all are ended")
	timeout := flag.Duration("timeout", 60*time.Second, "overall deadline")
	events := flag.Bool("events", true, "also require one SSE frame from /events")
	scrapes := flag.Int("scrapes", 3, "minimum /metrics scrapes to lint and check for monotonicity")
	cli.Parse(flag.CommandLine, os.Args[1:])
	if *addr == "" {
		cli.Usagef("obsvcheck: -addr is required")
	}
	base := strings.TrimRight(*addr, "/")
	deadline := time.Now().Add(*timeout)
	client := &http.Client{Timeout: 5 * time.Second}

	// 1. Liveness.
	waitHealthz(client, base, deadline)
	fmt.Println("obsvcheck: healthz ok")

	// 3 runs concurrently with 4: attach the stream before the campaign
	// can finish so a fast run cannot race past us.
	frameCh := make(chan error, 1)
	if *events {
		go func() { frameCh <- readOneEvent(base, deadline) }()
	}

	// 2+4 interleaved: scrape and lint /metrics while polling the board.
	prev := map[string]float64{}
	scraped := 0
	for {
		if time.Now().After(deadline) {
			cli.Verifyf("obsvcheck: timeout: %d campaigns not all ended before deadline", *campaigns)
		}
		if err := scrapeMetrics(client, base, prev); err != nil {
			cli.Verifyf("obsvcheck: /metrics: %v", err)
		}
		scraped++
		done, err := boardEnded(client, base, *campaigns)
		if err != nil {
			cli.Verifyf("obsvcheck: /campaigns: %v", err)
		}
		if done && scraped >= *scrapes {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("obsvcheck: %d campaigns ended; %d clean metric scrapes\n", *campaigns, scraped)

	if *events {
		if err := <-frameCh; err != nil {
			cli.Verifyf("obsvcheck: /events: %v", err)
		}
		fmt.Println("obsvcheck: events ok")
	}
	fmt.Println("obsvcheck: PASS")
}

func waitHealthz(client *http.Client, base string, deadline time.Time) {
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && bytes.Contains(body, []byte(`"ok"`)) {
				return
			}
		}
		if time.Now().After(deadline) {
			cli.Runtimef("obsvcheck: healthz never answered at %s", base)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// scrapeMetrics fetches /metrics once, lints it, and checks that no
// counter moved backwards relative to prev (which it updates).
func scrapeMetrics(client *http.Client, base string, prev map[string]float64) error {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	if err := obsv.LintPromText(bytes.NewReader(body)); err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	// Counter monotonicity across scrapes: find "# TYPE x counter"
	// declarations, then compare bare samples of those names.
	types := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) == 4 && f[3] == "counter" {
				types[f[2]] = true
			}
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 || !types[f[0]] {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(f[1], "%g", &v); err != nil {
			continue
		}
		if last, seen := prev[f[0]]; seen && v < last {
			return fmt.Errorf("counter %s went backwards: %g -> %g", f[0], last, v)
		}
		prev[f[0]] = v
	}
	return sc.Err()
}

// boardEnded reports whether at least want campaigns exist and every
// registered campaign has ended, verifying shard-table consistency for
// each along the way.
func boardEnded(client *http.Client, base string, want int) (bool, error) {
	resp, err := client.Get(base + "/campaigns")
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	var rows []obsv.CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		return false, err
	}
	for _, c := range rows {
		if err := checkShards(client, base, c); err != nil {
			return false, err
		}
	}
	if len(rows) < want {
		return false, nil
	}
	for _, c := range rows {
		if !c.Ended {
			return false, nil
		}
		if !c.Complete {
			return false, fmt.Errorf("campaign %d (%s) ended without completing", c.ID, c.Name)
		}
		if c.TotalUnits > 0 && c.DoneUnits != c.TotalUnits {
			return false, fmt.Errorf("campaign %d (%s) ended at %d/%d units",
				c.ID, c.Name, c.DoneUnits, c.TotalUnits)
		}
	}
	return true, nil
}

func checkShards(client *http.Client, base string, c obsv.CampaignStatus) error {
	resp, err := client.Get(fmt.Sprintf("%s/campaigns/%d/shards", base, c.ID))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var body struct {
		Campaign obsv.CampaignStatus `json:"campaign"`
		Shards   []obsv.ShardStatus  `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return err
	}
	for _, s := range body.Shards {
		if s.TotalUnits > 0 && s.DoneUnits > s.TotalUnits {
			return fmt.Errorf("campaign %d shard %d reports %d/%d units",
				c.ID, s.Shard, s.DoneUnits, s.TotalUnits)
		}
	}
	return nil
}

// readOneEvent attaches to /events and waits for a single data frame
// containing valid JSON with the mandatory fields.
func readOneEvent(base string, deadline time.Time) error {
	client := &http.Client{Timeout: time.Until(deadline)}
	resp, err := client.Get(base + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		return fmt.Errorf("content-type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var frame struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &frame); err != nil {
			return fmt.Errorf("bad frame %q: %w", line, err)
		}
		if frame.Event == "" {
			return fmt.Errorf("frame missing event name: %q", line)
		}
		return nil
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("stream closed before any event frame")
}
