// Command contigchaos soaks the simulated kernel under deterministic
// fault injection: a service profile runs while the hardware mover, the
// software migrator, compaction carves, and the resizer misfire at the
// given rates. The kernel must absorb every fault — retrying, degrading
// to software migration, deferring, requeueing — with its full invariant
// set holding at every checkpoint, and must still manufacture 2 MB
// contiguity once the faults lift.
//
//	contigchaos                              # default acceptance soak
//	contigchaos -mem 1024 -ticks 2000        # bigger machine, longer soak
//	contigchaos -fault-rate 0.10 -seed 7     # harsher schedule
//	contigchaos -trace                       # + Chrome trace & metrics JSONL
//	contigchaos -checkpoint-every 50 \
//	            -checkpoint-out results/chaos.snap   # rolling checkpoints
//	contigchaos -resume results/chaos.snap   # continue a killed soak
//	contigchaos -kill-resume -kill-at 300    # kill/resume equivalence proof
//
// The process exits non-zero if any invariant checkpoint fails, the
// kernel cannot recover contiguity after the faults are disarmed, or (in
// -kill-resume mode) the resumed run does not land on exactly the golden
// run's final state hash and counters.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"

	"contiguitas/internal/cli"
	"contiguitas/internal/fault"
	"contiguitas/internal/kernel"
	"contiguitas/internal/obsv"
	"contiguitas/internal/snapshot"
	"contiguitas/internal/telemetry"
	"contiguitas/internal/workload"
)

func main() {
	memMB := flag.Uint64("mem", 512, "simulated machine memory in MiB")
	mode := flag.String("mode", "contiguitas", "kernel mode (linux|contiguitas)")
	profile := flag.String("profile", "web", "service profile (web|cachea|cacheb|ci)")
	ticks := flag.Uint64("ticks", 600, "faulted soak length in ticks")
	recovery := flag.Uint64("recovery", 100, "post-fault recovery ticks (the overcommitted web profile needs ~120 to drain; shorter runs may fail the recovery gate)")
	checkEvery := flag.Uint64("check-every", 50, "invariant checkpoint cadence in ticks")
	faultRate := flag.Float64("fault-rate", 0.20, "mover fault probability; other points scale from it")
	seed := flag.Uint64("seed", 1, "soak seed (faults and workload)")
	trace := flag.Bool("trace", false, "attach telemetry to the soaked kernel and export it on exit")
	traceOut := flag.String("trace-out", "results/chaos-trace.json", "Chrome trace_event output path (with -trace)")
	metricsOut := flag.String("metrics-out", "results/chaos-metrics.jsonl", "per-tick metrics JSONL output path (with -trace)")
	ckptEvery := flag.Uint64("checkpoint-every", 0, "take a crash-consistent checkpoint every N ticks (0 disables)")
	ckptOut := flag.String("checkpoint-out", "results/chaos.snap", "rolling checkpoint path (with -checkpoint-every)")
	resume := flag.String("resume", "", "resume the soak from this checkpoint file instead of starting fresh")
	killResume := flag.Bool("kill-resume", false, "run the kill-and-resume equivalence experiment instead of a single soak")
	killAt := flag.Uint64("kill-at", 0, "tick to kill the soak at in -kill-resume mode (0 = mid-soak)")
	pressureOn := flag.Bool("pressure", true, "enable the memory-pressure ladder (admission control, throttling, emergency shrink, OOM killer)")
	serve := flag.String("serve", "", "serve the live observability HTTP plane on this address (e.g. :8080 or :0; empty disables)")
	cli.Parse(flag.CommandLine, os.Args[1:])

	handle, err := obsv.MountCLI(*serve)
	cli.Check(err)
	defer handle.Close()

	opts := workload.DefaultChaosOptions()
	opts.MemBytes = *memMB << 20
	opts.Ticks = *ticks
	opts.RecoveryTicks = *recovery
	opts.CheckEvery = *checkEvery
	opts.Seed = *seed
	opts.MoverFaultRate = *faultRate
	opts.CarveFaultRate = *faultRate / 2
	opts.SWFaultRate = *faultRate / 4
	opts.ResizeFaultRate = *faultRate / 2
	opts.ReclaimFaultRate = *faultRate / 4
	if !*pressureOn {
		opts.Pressure = nil
		opts.ReclaimFaultRate = 0
	}

	switch *mode {
	case "linux":
		opts.Mode = kernel.ModeLinux
	case "contiguitas":
		opts.Mode = kernel.ModeContiguitas
	default:
		cli.Usagef("contigchaos: unknown mode %q", *mode)
	}
	switch *profile {
	case "web":
		// DefaultChaosOptions already carries the pressured Web profile.
	case "cachea":
		opts.Profile = workload.CacheA()
	case "cacheb":
		opts.Profile = workload.CacheB()
	case "ci":
		opts.Profile = workload.CI()
	default:
		cli.Usagef("contigchaos: unknown profile %q", *profile)
	}

	if *killResume {
		runKillResume(opts, *ckptEvery, *killAt, *ckptOut)
		return
	}

	fmt.Printf("chaos soak: mode=%s profile=%s mem=%dMiB ticks=%d+%d seed=%d mover-fault=%.2f%%\n",
		*mode, opts.Profile.Name, *memMB, opts.Ticks, opts.RecoveryTicks,
		opts.Seed, opts.MoverFaultRate*100)

	// The writer-side pump: the checkpoint callback runs on the soak's
	// driving goroutine every -check-every ticks, which is exactly the
	// boundary a /metrics scrape may publish at.
	var pub *telemetry.Publisher
	opts.Checkpoint = func(ck workload.ChaosCheckpoint) {
		pub.Pump(ck.Tick)
		status := "ok"
		if ck.Violation != nil {
			status = "VIOLATION: " + ck.Violation.Error()
		}
		fmt.Printf("  tick %6d  events %9d  %s  [%s]\n",
			ck.Tick, ck.Events, ck.Robustness, status)
	}

	// With -trace, attach a tracer and sampler to the soak's kernel via
	// the OnKernel hook (on resume the hook sees the restored kernel).
	// Export runs through opts.Export, which RunChaos invokes on every
	// exit path — a killed or failed soak still flushes complete
	// artifacts instead of leaving truncated files behind. -serve
	// attaches the same way even without -trace (a smaller ring, no
	// exports).
	var soaked *kernel.Kernel
	var tp *telemetry.Ring
	var sampler *telemetry.Sampler
	var exportErr error
	if *trace {
		opts.OnKernel = func(k *kernel.Kernel) {
			soaked = k
			tp = telemetry.NewRing(1 << 16)
			k.SetTracer(tp)
			sampler = k.AttachSampler(int(opts.Ticks+opts.RecoveryTicks) + 1)
			pub = handle.Attach(k.Metrics(), tp)
			pub.Publish(0)
		}
		opts.Export = func() {
			if soaked == nil {
				return
			}
			exportErr = telemetry.ExportAll(
				telemetry.ChromeTraceArtifact(*traceOut, tp, sampler),
				telemetry.MetricsJSONLArtifact(*metricsOut, sampler),
			)
			if exportErr != nil {
				return
			}
			fmt.Printf("telemetry: %s (%d events, %d overwritten), %s (%d rows)\n",
				*traceOut, tp.Len(), tp.Overwritten(), *metricsOut, sampler.Len())
		}
	} else if handle != nil {
		opts.OnKernel = func(k *kernel.Kernel) {
			tp = telemetry.NewRing(1 << 12)
			k.SetTracer(tp)
			pub = handle.Attach(k.Metrics(), tp)
			pub.Publish(0)
		}
	}

	// Rolling checkpoints: every -checkpoint-every ticks the full machine
	// (kernel, runner, injector) is sealed into the hash chain and the
	// file at -checkpoint-out is atomically replaced.
	cp := &snapshot.Checkpointer{Path: *ckptOut}
	var cpErr error
	if *ckptEvery > 0 {
		opts.SnapshotEvery = *ckptEvery
		opts.OnSnapshot = func(tick uint64, k *kernel.Kernel, r *workload.Runner, inj *fault.Injector) {
			if _, err := cp.Take(tick, k, r, inj); err != nil && cpErr == nil {
				cpErr = err
			}
		}
	}

	var rep *workload.ChaosReport
	if *resume != "" {
		var e *snapshot.Envelope
		e, err = snapshot.Read(*resume)
		if err != nil {
			// A missing file is operational; anything else means the
			// snapshot failed its integrity checks.
			if errors.Is(err, fs.ErrNotExist) {
				cli.Runtimef("contigchaos: %v", err)
			}
			cli.Verifyf("contigchaos: %v", err)
		}
		fmt.Printf("resuming from %s: seq=%d tick=%d state=%016x chain=%016x\n",
			*resume, e.Seq, e.Tick, e.StateHash, e.ChainHash)
		// Checkpoints taken after the resume extend the original chain.
		cp.SetChain(e.Seq+1, e.ChainHash)
		rep, err = snapshot.ResumeChaos(opts, e)
	} else {
		rep, err = workload.RunChaos(opts)
	}
	if err != nil {
		cli.Runtimef("contigchaos: %v", err)
	}
	pub.Publish(rep.Ticks)
	if exportErr != nil {
		cli.Runtimef("contigchaos: %v", exportErr)
	}
	if cpErr != nil {
		cli.Runtimef("contigchaos: checkpointing: %v", cpErr)
	}

	fmt.Printf("\nsoak complete: %d ticks, %d events, %d checkpoints\n",
		rep.Ticks, rep.Events, rep.Checkpoints)
	if last := cp.Last(); last != nil {
		fmt.Printf("last snapshot: %s seq=%d tick=%d state=%016x chain=%016x\n",
			*ckptOut, last.Seq, last.Tick, last.StateHash, last.ChainHash)
	}
	fmt.Printf("final state hash: %016x\n", rep.FinalStateHash)
	fmt.Println("injected faults:")
	for _, ps := range rep.Faults {
		fmt.Printf("  %-24s hits=%-8d fired=%d\n", ps.Name, ps.Hits, ps.Fired)
	}
	fmt.Printf("failure handling: %s\n", rep.Robustness)
	fmt.Printf("unmovable alloc failures: %d\n", rep.UnmovableAllocFailures)
	fmt.Printf("recovery: 2MB HugeTLB allocated=%d free-2MB-contig=%.1f%%\n",
		rep.Huge2MAfterRecovery, rep.FreeContig2MAfter*100)

	if len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "contigchaos: %d invariant violation(s):\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(cli.CodeVerify)
	}
	if !rep.Recovered {
		cli.Verifyf("contigchaos: kernel failed to recover contiguity after faults lifted")
	}
	fmt.Println("PASS: invariants held at every checkpoint; contiguity recovered")
}

// runKillResume drives the three-run equivalence experiment: golden
// (uninterrupted, no checkpoints), killed (checkpointing, crashed at
// -kill-at), and resumed (restored from the killed run's last on-disk
// checkpoint). The resumed run must finish on exactly the golden run's
// final state hash and counters.
func runKillResume(opts workload.ChaosOptions, every, killAt uint64, path string) {
	if every == 0 {
		every = 50
	}
	if killAt == 0 {
		killAt = opts.Ticks / 2
	}
	fmt.Printf("kill-and-resume: profile=%s mem=%dMiB ticks=%d+%d seed=%d checkpoint-every=%d kill-at=%d\n",
		opts.Profile.Name, opts.MemBytes>>20, opts.Ticks, opts.RecoveryTicks, opts.Seed, every, killAt)

	res, err := snapshot.KillAndResume(opts, every, killAt, path)
	if err != nil {
		cli.Runtimef("contigchaos: kill-resume: %v", err)
	}
	fmt.Printf("  golden : %d ticks, final state %016x\n", res.Golden.Ticks, res.Golden.FinalStateHash)
	fmt.Printf("  killed : %d ticks (killed=%v), last checkpoint seq=%d tick=%d\n",
		res.Killed.Ticks, res.Killed.Killed, res.Checkpoint.Seq, res.Checkpoint.Tick)
	fmt.Printf("  resumed: %d ticks, final state %016x\n", res.Resumed.Ticks, res.Resumed.FinalStateHash)
	if !res.Match {
		fmt.Fprintf(os.Stderr, "contigchaos: FAIL: resumed run diverged from golden\n")
		fmt.Fprintf(os.Stderr, "  golden counters : %+v\n", res.Golden.FinalCounters)
		fmt.Fprintf(os.Stderr, "  resumed counters: %+v\n", res.Resumed.FinalCounters)
		os.Exit(cli.CodeVerify)
	}
	// Equivalence proven but the state itself may be bad: a mid-soak
	// invariant break reproduces identically in golden and resumed runs,
	// and identical corruption is still corruption.
	if len(res.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "contigchaos: FAIL: %d invariant violation(s) during kill-resume:\n", len(res.Violations))
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(cli.CodeVerify)
	}
	if n := len(res.Golden.OOMHistory); n > 0 {
		fmt.Printf("  oom kills reproduced: %d\n", n)
	}
	fmt.Println("PASS: resumed state hash and counters identical to uninterrupted golden run")
}
