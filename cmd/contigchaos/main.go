// Command contigchaos soaks the simulated kernel under deterministic
// fault injection: a service profile runs while the hardware mover, the
// software migrator, compaction carves, and the resizer misfire at the
// given rates. The kernel must absorb every fault — retrying, degrading
// to software migration, deferring, requeueing — with its full invariant
// set holding at every checkpoint, and must still manufacture 2 MB
// contiguity once the faults lift.
//
//	contigchaos                              # default acceptance soak
//	contigchaos -mem 1024 -ticks 2000        # bigger machine, longer soak
//	contigchaos -fault-rate 0.10 -seed 7     # harsher schedule
//	contigchaos -trace                       # + Chrome trace & metrics JSONL
//
// The process exits non-zero if any invariant checkpoint fails or the
// kernel cannot recover contiguity after the faults are disarmed.
package main

import (
	"flag"
	"fmt"
	"os"

	"contiguitas/internal/kernel"
	"contiguitas/internal/telemetry"
	"contiguitas/internal/workload"
)

func main() {
	memMB := flag.Uint64("mem", 512, "simulated machine memory in MiB")
	mode := flag.String("mode", "contiguitas", "kernel mode (linux|contiguitas)")
	profile := flag.String("profile", "web", "service profile (web|cachea|cacheb|ci)")
	ticks := flag.Uint64("ticks", 600, "faulted soak length in ticks")
	recovery := flag.Uint64("recovery", 100, "post-fault recovery ticks (the overcommitted web profile needs ~120 to drain; shorter runs may fail the recovery gate)")
	checkEvery := flag.Uint64("check-every", 50, "invariant checkpoint cadence in ticks")
	faultRate := flag.Float64("fault-rate", 0.20, "mover fault probability; other points scale from it")
	seed := flag.Uint64("seed", 1, "soak seed (faults and workload)")
	trace := flag.Bool("trace", false, "attach telemetry to the soaked kernel and export it on exit")
	traceOut := flag.String("trace-out", "results/chaos-trace.json", "Chrome trace_event output path (with -trace)")
	metricsOut := flag.String("metrics-out", "results/chaos-metrics.jsonl", "per-tick metrics JSONL output path (with -trace)")
	flag.Parse()

	opts := workload.DefaultChaosOptions()
	opts.MemBytes = *memMB << 20
	opts.Ticks = *ticks
	opts.RecoveryTicks = *recovery
	opts.CheckEvery = *checkEvery
	opts.Seed = *seed
	opts.MoverFaultRate = *faultRate
	opts.CarveFaultRate = *faultRate / 2
	opts.SWFaultRate = *faultRate / 4
	opts.ResizeFaultRate = *faultRate / 2

	switch *mode {
	case "linux":
		opts.Mode = kernel.ModeLinux
	case "contiguitas":
		opts.Mode = kernel.ModeContiguitas
	default:
		fmt.Fprintf(os.Stderr, "contigchaos: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	switch *profile {
	case "web":
		// DefaultChaosOptions already carries the pressured Web profile.
	case "cachea":
		opts.Profile = workload.CacheA()
	case "cacheb":
		opts.Profile = workload.CacheB()
	case "ci":
		opts.Profile = workload.CI()
	default:
		fmt.Fprintf(os.Stderr, "contigchaos: unknown profile %q\n", *profile)
		os.Exit(2)
	}

	fmt.Printf("chaos soak: mode=%s profile=%s mem=%dMiB ticks=%d+%d seed=%d mover-fault=%.2f%%\n",
		*mode, opts.Profile.Name, *memMB, opts.Ticks, opts.RecoveryTicks,
		opts.Seed, opts.MoverFaultRate*100)

	opts.Checkpoint = func(ck workload.ChaosCheckpoint) {
		status := "ok"
		if ck.Violation != nil {
			status = "VIOLATION: " + ck.Violation.Error()
		}
		fmt.Printf("  tick %6d  events %9d  %s  [%s]\n",
			ck.Tick, ck.Events, ck.Robustness, status)
	}

	// With -trace, attach a tracer and sampler to the soak's kernel via
	// the OnKernel hook; the soak itself is unchanged.
	var soaked *kernel.Kernel
	var tp *telemetry.Ring
	var sampler *telemetry.Sampler
	if *trace {
		opts.OnKernel = func(k *kernel.Kernel) {
			soaked = k
			tp = telemetry.NewRing(1 << 16)
			k.SetTracer(tp)
			sampler = k.AttachSampler(int(opts.Ticks+opts.RecoveryTicks) + 1)
		}
	}

	rep, err := workload.RunChaos(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "contigchaos: %v\n", err)
		os.Exit(1)
	}

	if *trace && soaked != nil {
		if err := telemetry.ExportChromeTraceFile(*traceOut, tp, sampler); err != nil {
			fmt.Fprintf(os.Stderr, "contigchaos: trace export: %v\n", err)
			os.Exit(1)
		}
		if err := telemetry.ExportMetricsJSONLFile(*metricsOut, sampler); err != nil {
			fmt.Fprintf(os.Stderr, "contigchaos: metrics export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry: %s (%d events, %d overwritten), %s (%d rows)\n",
			*traceOut, tp.Len(), tp.Overwritten(), *metricsOut, sampler.Len())
	}

	fmt.Printf("\nsoak complete: %d ticks, %d events, %d checkpoints\n",
		rep.Ticks, rep.Events, rep.Checkpoints)
	fmt.Println("injected faults:")
	for _, ps := range rep.Faults {
		fmt.Printf("  %-24s hits=%-8d fired=%d\n", ps.Name, ps.Hits, ps.Fired)
	}
	fmt.Printf("failure handling: %s\n", rep.Robustness)
	fmt.Printf("unmovable alloc failures: %d\n", rep.UnmovableAllocFailures)
	fmt.Printf("recovery: 2MB HugeTLB allocated=%d free-2MB-contig=%.1f%%\n",
		rep.Huge2MAfterRecovery, rep.FreeContig2MAfter*100)

	if len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "contigchaos: %d invariant violation(s):\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(1)
	}
	if !rep.Recovered {
		fmt.Fprintln(os.Stderr, "contigchaos: kernel failed to recover contiguity after faults lifted")
		os.Exit(1)
	}
	fmt.Println("PASS: invariants held at every checkpoint; contiguity recovered")
}
