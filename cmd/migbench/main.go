// Command migbench runs the hardware-level microbenchmarks: the
// Figure 13 page-migration study (page-unavailable cycles as victim
// TLBs scale, Linux software migration versus Contiguitas-HW) and the
// §5.3 request-serving experiments where unmovable networking buffers
// are live-migrated under NGINX-like and memcached-like load.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"contiguitas"
	"contiguitas/internal/cli"
	"contiguitas/internal/hw"
	"contiguitas/internal/hw/contighw"
	"contiguitas/internal/hw/cpu"
	"contiguitas/internal/hw/platform"
	"contiguitas/internal/obsv"
	"contiguitas/internal/telemetry"
	"contiguitas/internal/trans"
)

// obsvHandle is the -serve plane (nil when the flag is off); the
// migration trace tees its cycle-level ring into /events.
var obsvHandle *obsv.Handle

func main() {
	bench := flag.String("bench", "all", "benchmark (fig13|serve|duration|walks|all)")
	victims := flag.Int("victims", 8, "maximum victim TLBs for fig13")
	cycles := flag.Uint64("cycles", 8_000_000, "serving window in cycles")
	traceOut := flag.String("trace-out", "", "write a cycle-level Chrome trace of one SW and one HW migration to this file")
	serveAddr := flag.String("serve", "", "serve the live observability HTTP plane on this address (e.g. :8080 or :0; empty disables)")
	cli.Parse(flag.CommandLine, os.Args[1:])

	var err error
	obsvHandle, err = obsv.MountCLI(*serveAddr)
	cli.Check(err)
	defer obsvHandle.Close()

	if *traceOut != "" {
		if err := traceMigrations(*traceOut, *victims); err != nil {
			cli.Runtimef("migbench: %v", err)
		}
	}

	switch *bench {
	case "fig13":
		fig13(*victims)
	case "serve":
		serve(*cycles)
	case "duration":
		duration()
	case "walks":
		walks()
	case "all":
		fig13(*victims)
		duration()
		walks()
		serve(*cycles)
	default:
		cli.Usagef("migbench: unknown benchmark %q", *bench)
	}
}

// traceMigrations runs one software migration (TLB shootdown across the
// victim cores) and one Contiguitas-HW migration (shootdown-free) on an
// instrumented machine and writes the cycle-stamped Chrome trace, so the
// two mechanisms can be compared side by side in Perfetto.
func traceMigrations(path string, victims int) error {
	md := contighw.Cacheable
	m := platform.NewMachine(hw.DefaultParams(), &md)
	tp := m.AttachTracer(1 << 12)
	obsvHandle.Attach(nil, tp)

	m.MapPage(10, 100)
	for i := 0; i < 64; i++ {
		m.Access(i%m.P.Cores, 10<<12+uint64(i)*64, true, uint64(i), 0)
	}
	if victims >= m.P.Cores {
		victims = m.P.Cores - 1
	}
	vs := make([]int, 0, victims)
	for c := 1; c <= victims; c++ {
		vs = append(vs, c)
	}
	m.SoftwareMigrate(0, 10, 100, 200, vs)
	if _, err := m.HWMigrateObserved(10, 200, 300, platform.HWMigrateOptions{}, nil); err != nil {
		return err
	}
	if err := telemetry.ExportChromeTraceFile(path, tp, nil); err != nil {
		return err
	}
	fmt.Printf("cycle-level migration trace (%d events): %s\n\n", tp.Len(), path)
	return nil
}

func fig13(maxVictims int) {
	fmt.Println("== Figure 13: page-unavailable cycles during one 4KB migration ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "victim cores\tlinux-real\tlinux-sim\tdeviation\tcontiguitas")
	for _, p := range platform.Fig13Series(maxVictims) {
		fmt.Fprintf(w, "%d\t%d\t%d\t%+.1f%%\t%d\n",
			p.Victims, p.LinuxReal, p.LinuxSim,
			(float64(p.LinuxSim)/float64(p.LinuxReal)-1)*100, p.Contiguitas)
	}
	w.Flush()
}

func duration() {
	fmt.Println("\n== Contiguitas-HW 4KB migration duration (page stays available) ==")
	for _, mode := range []contighw.Mode{contighw.Noncacheable, contighw.Cacheable} {
		md := mode
		m := platform.NewMachine(hw.DefaultParams(), &md)
		m.MapPage(10, 100)
		for i := 0; i < 64; i++ {
			m.Access(i%m.P.Cores, 10<<12+uint64(i)*64, true, uint64(i), 0)
		}
		var copyDone uint64
		// Observe the copy completion directly on the metadata entry.
		probeStart := m.Eng.Now()
		rep, err := m.HWMigrateObserved(10, 100, 200, platform.HWMigrateOptions{}, func() {
			copyDone = m.Eng.Now() - probeStart
		})
		if err != nil {
			cli.Runtimef("migbench: %v", err)
		}
		copyUs := float64(copyDone) / (m.P.ClockGHz * 1000)
		totalUs := float64(rep.TotalCycles) / (m.P.ClockGHz * 1000)
		fmt.Printf("  %-13s copy %.1f us; end-to-end %.1f us (incl. lazy invalidation window); unavailable: %d cycles (one local INVLPG)\n",
			mode, copyUs, totalUs, rep.UnavailableCycles)
	}
	fmt.Println("paper: ~2us copy; access to the page is never blocked")
}

func walks() {
	fmt.Println("\n== Translation-overhead validation (simulated TLBs+caches vs analytic model) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "footprint\twalk cycles 4KB\twalk cycles 2MB\tsim residual\tmodel residual")
	tlbModel := trans.DefaultTLB()
	for _, pages := range []int{8192, 32768, 131072} {
		cfg := cpu.DefaultConfig()
		cfg.FootprintPages = pages
		cfg.Accesses = 150_000
		f4, f2 := cpu.CompareHugePages(cfg)
		model := tlbModel.Residual(trans.Page2M, uint64(pages)*4096)
		simRes := 0.0
		if f4 > 0 {
			simRes = f2 / f4
		}
		fmt.Fprintf(w, "%d MB\t%.1f%%\t%.1f%%\t%.2f\t%.2f\n",
			pages*4/1024, f4*100, f2*100, simRes, model)
	}
	w.Flush()
	fmt.Println("(2MB residual factors from the event simulation and the Figure 3 analytic model)")
}

func serve(cycles uint64) {
	fmt.Println("\n== §5.3: migration-rate impact at peak request throughput ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "app\tmode\trate/s\trequests\tloss")
	for _, r := range contiguitas.Sec53(cycles) {
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%d\t%.2f%%\n", r.App, r.Mode, r.Rate, r.Requests, r.LossPct)
	}
	w.Flush()
	fmt.Println("paper: Regular (100/s) no impact; Very High (1000/s) <=0.3% noncacheable, none cacheable")
	fmt.Printf("memcached with 2MB pages: +%.1f%% (paper ~7%%)\n",
		(contiguitas.MemcachedHugePageGain()-1)*100)
}
