// Command contigd is the resident campaign daemon: a long-lived HTTP
// service that accepts fleet-study campaign submissions, runs them
// through the supervised sharded engine with durable checkpoints, and
// survives restarts without losing acknowledged work.
//
//	contigd -state-dir /var/lib/contigd -addr :8239
//
// On startup it scans the state directory and re-admits every campaign
// that was queued or running when the previous process died, resuming
// each from its shard checkpoints; the resumed campaign's result is
// byte-identical to an uninterrupted run. SIGTERM/SIGINT drain
// gracefully: admission stops (503), in-flight shards checkpoint at
// their next server boundary, records stay non-terminal on disk, and
// the process exits 0. A SIGKILL at any instant loses at most one
// shard's current attempt, never a completed one.
//
// Storage faults do not crash the daemon: a store write that keeps
// failing past -store-retries fails the campaign with a typed storage
// error and flips the daemon into read-only degraded mode — new
// admissions get 503 + Retry-After, reads keep serving, /healthz
// reports {"status":"degraded"}, and a background probe (paced by
// -probe-interval) lifts degraded mode once the backend writes again.
// -scrub runs an integrity pass over the state directory before the
// listener comes up (corrupt artifacts are quarantined under
// .quarantine/ and healable campaigns requeued); -scrub-every repeats
// the pass on a timer. -chaos-fs arms the fault-injecting filesystem
// for soak tests.
//
// The API (/api/campaigns, /api/stats) is mounted on the same mux as
// the observability plane (/healthz, /metrics, /campaigns, /events,
// /debug/pprof/), so one port serves both control and introspection.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"contiguitas/internal/cli"
	"contiguitas/internal/fleet"
	"contiguitas/internal/obsv"
	"contiguitas/internal/resultcache"
	"contiguitas/internal/service"
	"contiguitas/internal/vfs"
)

func main() {
	addr := flag.String("addr", ":8239", "HTTP listen address (\":0\" for an ephemeral port)")
	stateDir := flag.String("state-dir", "", "durable state directory (empty keeps campaigns in memory — they will NOT survive a restart)")
	workers := flag.Int("workers", 2, "campaigns run concurrently")
	queueDepth := flag.Int("queue-depth", 8, "bounded admission queue; submits beyond it get 429")
	shardWorkers := flag.Int("shard-workers", 0, "worker goroutines per campaign cell (0 picks the supervise default)")
	maxAttempts := flag.Int("max-attempts", 3, "default per-cell retry budget for specs that set none")
	deadline := flag.Duration("campaign-deadline", 0, "default per-campaign deadline for specs that set none (0 = unbounded)")
	storeRetries := flag.Int("store-retries", 0, "store write attempts before a campaign fails with a storage error and the daemon degrades (0 picks the default)")
	probeInterval := flag.Duration("probe-interval", 0, "degraded-mode store probe cadence (0 picks the default)")
	scrub := flag.Bool("scrub", false, "run an integrity scrub over -state-dir before serving")
	scrubEvery := flag.Duration("scrub-every", 0, "repeat the integrity scrub on this cadence while serving (0 = startup-only)")
	scrubCache := flag.String("scrub-cache", "", "result-cache directory to include in integrity scrubs")
	chaosFS := flag.String("chaos-fs", "", "arm the fault-injecting filesystem, e.g. \"seed=7,write=0.05,rot\" (soak testing only)")
	cli.Parse(flag.CommandLine, os.Args[1:])

	if *chaosFS != "" {
		inj, err := vfs.NewInjectFromSpec(vfs.Active(), *chaosFS)
		if err != nil {
			cli.Usagef("contigd: -chaos-fs: %v", err)
		}
		vfs.SetDefault(inj)
		fmt.Printf("contigd: CHAOS: filesystem fault injection armed (%s)\n", *chaosFS)
	}

	var store service.Store
	var disk *service.Disk
	if *stateDir != "" {
		d, err := service.OpenDisk(*stateDir)
		if err != nil {
			cli.Runtimef("contigd: open state dir: %v", err)
		}
		store, disk = d, d
	} else {
		fmt.Println("contigd: WARNING: no -state-dir, campaigns are in-memory only and will not survive a restart")
		store = service.NewMemory()
	}
	if (*scrub || *scrubEvery > 0) && disk == nil {
		cli.Usagef("contigd: -scrub requires -state-dir (memory cannot rot)")
	}

	board := obsv.NewBoard()
	bus := obsv.NewEventBus()
	sched := service.NewScheduler(service.SchedulerConfig{
		Store:           store,
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		ShardWorkers:    *shardWorkers,
		MaxAttempts:     *maxAttempts,
		DefaultDeadline: *deadline,
		StoreRetries:    *storeRetries,
		ProbeInterval:   *probeInterval,
		Board:           board,
		Bus:             bus,
	})

	scrubCfg := service.ScrubConfig{Disk: disk, Sched: sched}
	if *scrubCache != "" {
		scrubCfg.Cache = resultcache.NewDir(*scrubCache, fleet.CacheSchemaVersion)
		scrubCfg.CacheDir = *scrubCache
	}
	if *scrub || *scrubEvery > 0 {
		// Scrub before recovery: a rotted record is quarantined (lost, not
		// trusted) and a rotted cell is requeued before any worker can
		// merge it, so recovery only ever sees artifacts that pass their
		// digests.
		rep, err := service.Scrub(scrubCfg)
		if err != nil {
			cli.Runtimef("contigd: startup scrub: %v", err)
		}
		fmt.Printf("contigd: %s\n", rep)
	}

	// Recovery before the listener: re-admitted campaigns are first in
	// line, and a prober that connects sees truthful queue state.
	recovered, err := sched.Recover()
	if err != nil {
		cli.Runtimef("contigd: recovery scan: %v", err)
	}
	fmt.Printf("contigd: recovered %d campaign(s)\n", recovered)
	sched.Start()

	// Periodic scrub: same pass as startup, on a timer, stopped at drain.
	scrubStop := make(chan struct{})
	scrubDone := make(chan struct{})
	if *scrubEvery > 0 {
		go func() {
			defer close(scrubDone)
			t := time.NewTicker(*scrubEvery)
			defer t.Stop()
			for {
				select {
				case <-scrubStop:
					return
				case <-t.C:
					if rep, err := service.Scrub(scrubCfg); err != nil {
						fmt.Printf("contigd: periodic scrub: %v\n", err)
					} else if len(rep.Quarantined) > 0 || len(rep.Lost) > 0 {
						fmt.Printf("contigd: %s\n", rep)
					}
				}
			}
		}()
	} else {
		close(scrubDone)
	}

	srv, err := obsv.Start(obsv.Options{
		Addr:   *addr,
		Board:  board,
		Bus:    bus,
		Extend: sched.Mount,
		Health: sched.Health,
	})
	if err != nil {
		cli.Runtimef("contigd: listen: %v", err)
	}
	fmt.Printf("contigd: serving on %s (state: %s)\n", srv.URL(), stateDesc(*stateDir))

	// Block until asked to leave. SIGTERM and SIGINT both mean "drain":
	// the only unclean exit is the one nobody gets to handle.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	sig := <-sigs
	fmt.Printf("contigd: %s: draining (admission stopped, checkpointing in-flight shards)\n", sig)

	start := time.Now()
	close(scrubStop)
	<-scrubDone
	sched.Drain()
	srv.Close()
	st := sched.Stats()
	fmt.Printf("contigd: drained in %s: submitted=%d deduped=%d rejected=%d recovered=%d completed=%d failed=%d retried=%d store_retried=%d store_errors=%d cells_healed=%d scrub_quarantined=%d\n",
		time.Since(start).Round(time.Millisecond),
		st.Submitted, st.Deduped, st.Rejected, st.Recovered, st.Completed, st.Failed, st.Retried,
		st.StoreRetried, st.StoreErrors, st.CellsHealed, st.ScrubQuarantined)
	if st.Degraded {
		fmt.Println("contigd: exiting while DEGRADED: the storage backend never recovered")
		os.Exit(cli.CodeRuntime)
	}
	os.Exit(cli.CodeOK)
}

func stateDesc(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}
