// Command contigd is the resident campaign daemon: a long-lived HTTP
// service that accepts fleet-study campaign submissions, runs them
// through the supervised sharded engine with durable checkpoints, and
// survives restarts without losing acknowledged work.
//
//	contigd -state-dir /var/lib/contigd -addr :8239
//
// On startup it scans the state directory and re-admits every campaign
// that was queued or running when the previous process died, resuming
// each from its shard checkpoints; the resumed campaign's result is
// byte-identical to an uninterrupted run. SIGTERM/SIGINT drain
// gracefully: admission stops (503), in-flight shards checkpoint at
// their next server boundary, records stay non-terminal on disk, and
// the process exits 0. A SIGKILL at any instant loses at most one
// shard's current attempt, never a completed one.
//
// The API (/api/campaigns, /api/stats) is mounted on the same mux as
// the observability plane (/healthz, /metrics, /campaigns, /events,
// /debug/pprof/), so one port serves both control and introspection.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"contiguitas/internal/cli"
	"contiguitas/internal/obsv"
	"contiguitas/internal/service"
)

func main() {
	addr := flag.String("addr", ":8239", "HTTP listen address (\":0\" for an ephemeral port)")
	stateDir := flag.String("state-dir", "", "durable state directory (empty keeps campaigns in memory — they will NOT survive a restart)")
	workers := flag.Int("workers", 2, "campaigns run concurrently")
	queueDepth := flag.Int("queue-depth", 8, "bounded admission queue; submits beyond it get 429")
	shardWorkers := flag.Int("shard-workers", 0, "worker goroutines per campaign cell (0 picks the supervise default)")
	maxAttempts := flag.Int("max-attempts", 3, "default per-cell retry budget for specs that set none")
	deadline := flag.Duration("campaign-deadline", 0, "default per-campaign deadline for specs that set none (0 = unbounded)")
	cli.Parse(flag.CommandLine, os.Args[1:])

	var store service.Store
	if *stateDir != "" {
		d, err := service.OpenDisk(*stateDir)
		if err != nil {
			cli.Runtimef("contigd: open state dir: %v", err)
		}
		store = d
	} else {
		fmt.Println("contigd: WARNING: no -state-dir, campaigns are in-memory only and will not survive a restart")
		store = service.NewMemory()
	}

	board := obsv.NewBoard()
	bus := obsv.NewEventBus()
	sched := service.NewScheduler(service.SchedulerConfig{
		Store:           store,
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		ShardWorkers:    *shardWorkers,
		MaxAttempts:     *maxAttempts,
		DefaultDeadline: *deadline,
		Board:           board,
		Bus:             bus,
	})

	// Recovery before the listener: re-admitted campaigns are first in
	// line, and a prober that connects sees truthful queue state.
	recovered, err := sched.Recover()
	if err != nil {
		cli.Runtimef("contigd: recovery scan: %v", err)
	}
	fmt.Printf("contigd: recovered %d campaign(s)\n", recovered)
	sched.Start()

	srv, err := obsv.Start(obsv.Options{
		Addr:   *addr,
		Board:  board,
		Bus:    bus,
		Extend: sched.Mount,
	})
	if err != nil {
		cli.Runtimef("contigd: listen: %v", err)
	}
	fmt.Printf("contigd: serving on %s (state: %s)\n", srv.URL(), stateDesc(*stateDir))

	// Block until asked to leave. SIGTERM and SIGINT both mean "drain":
	// the only unclean exit is the one nobody gets to handle.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	sig := <-sigs
	fmt.Printf("contigd: %s: draining (admission stopped, checkpointing in-flight shards)\n", sig)

	start := time.Now()
	sched.Drain()
	srv.Close()
	st := sched.Stats()
	fmt.Printf("contigd: drained in %s: submitted=%d deduped=%d rejected=%d recovered=%d completed=%d failed=%d retried=%d\n",
		time.Since(start).Round(time.Millisecond),
		st.Submitted, st.Deduped, st.Rejected, st.Recovered, st.Completed, st.Failed, st.Retried)
	os.Exit(cli.CodeOK)
}

func stateDesc(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}
