module contiguitas

go 1.22
